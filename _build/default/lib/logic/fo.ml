module Value = Probdb_core.Value

type term =
  | Var of string
  | Const of Value.t

type atom = { rel : string; args : term list }

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t

type quantifier = Q_exists | Q_forall

let atom rel args = Atom { rel; args }
let rel name vars = Atom { rel = name; args = List.map (fun v -> Var v) vars }

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let exists vars body = List.fold_right (fun v acc -> Exists (v, acc)) vars body
let forall vars body = List.fold_right (fun v acc -> Forall (v, acc)) vars body

let compare_term a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const u, Const v -> Value.compare u v
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let compare_atom a b =
  match String.compare a.rel b.rel with
  | 0 -> List.compare compare_term a.args b.args
  | c -> c

let rank = function
  | True -> 0
  | False -> 1
  | Atom _ -> 2
  | Not _ -> 3
  | And _ -> 4
  | Or _ -> 5
  | Implies _ -> 6
  | Exists _ -> 7
  | Forall _ -> 8

let rec compare f g =
  match f, g with
  | True, True | False, False -> 0
  | Atom a, Atom b -> compare_atom a b
  | Not f, Not g -> compare f g
  | And (a, b), And (c, d) | Or (a, b), Or (c, d) | Implies (a, b), Implies (c, d) -> (
      match compare a c with 0 -> compare b d | r -> r)
  | Exists (x, f), Exists (y, g) | Forall (x, f), Forall (y, g) -> (
      match String.compare x y with 0 -> compare f g | r -> r)
  | _ -> Int.compare (rank f) (rank g)

let equal f g = compare f g = 0

module Sset = Set.Make (String)

let term_vars = function Var x -> Sset.singleton x | Const _ -> Sset.empty

let atom_vars a =
  List.fold_left (fun acc t -> Sset.union acc (term_vars t)) Sset.empty a.args

let rec free_set = function
  | True | False -> Sset.empty
  | Atom a -> atom_vars a
  | Not f -> free_set f
  | And (f, g) | Or (f, g) | Implies (f, g) -> Sset.union (free_set f) (free_set g)
  | Exists (x, f) | Forall (x, f) -> Sset.remove x (free_set f)

let free_vars f = Sset.elements (free_set f)
let is_sentence f = Sset.is_empty (free_set f)

let atoms f =
  let rec go acc = function
    | True | False -> acc
    | Atom a -> a :: acc
    | Not f -> go acc f
    | And (f, g) | Or (f, g) | Implies (f, g) -> go (go acc f) g
    | Exists (_, f) | Forall (_, f) -> go acc f
  in
  List.rev (go [] f)

let relations f =
  let add acc a =
    let k = List.length a.args in
    match List.assoc_opt a.rel acc with
    | Some k' when k' <> k ->
        invalid_arg
          (Printf.sprintf "Fo.relations: %s used with arities %d and %d" a.rel k' k)
    | Some _ -> acc
    | None -> (a.rel, k) :: acc
  in
  List.fold_left add [] (atoms f)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let constants f =
  atoms f
  |> List.concat_map (fun a ->
         List.filter_map (function Const v -> Some v | Var _ -> None) a.args)
  |> List.sort_uniq Value.compare

let rec size = function
  | True | False | Atom _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) | Implies (f, g) -> 1 + size f + size g
  | Exists (_, f) | Forall (_, f) -> 1 + size f

let map_atom_args f a = { a with args = List.map f a.args }

let subst_const x a f =
  let on_term = function Var y when String.equal x y -> Const a | t -> t in
  let rec go = function
    | (True | False) as f -> f
    | Atom at -> Atom (map_atom_args on_term at)
    | Not f -> Not (go f)
    | And (f, g) -> And (go f, go g)
    | Or (f, g) -> Or (go f, go g)
    | Implies (f, g) -> Implies (go f, go g)
    | (Exists (y, _) | Forall (y, _)) as f when String.equal x y -> f
    | Exists (y, f) -> Exists (y, go f)
    | Forall (y, f) -> Forall (y, go f)
  in
  go f

let subst_var x y f =
  let on_term = function Var z when String.equal x z -> Var y | t -> t in
  let rec go = function
    | (True | False) as f -> f
    | Atom at -> Atom (map_atom_args on_term at)
    | Not f -> Not (go f)
    | And (f, g) -> And (go f, go g)
    | Or (f, g) -> Or (go f, go g)
    | Implies (f, g) -> Implies (go f, go g)
    | (Exists (z, _) | Forall (z, _)) as f when String.equal x z -> f
    | Exists (z, body) ->
        if String.equal z y && Sset.mem x (free_set body) then
          invalid_arg "Fo.subst_var: variable capture"
        else Exists (z, go body)
    | Forall (z, body) ->
        if String.equal z y && Sset.mem x (free_set body) then
          invalid_arg "Fo.subst_var: variable capture"
        else Forall (z, go body)
  in
  go f

let standardize_apart ?(reserved = []) f =
  let used = ref (Sset.union (free_set f) (Sset.of_list reserved)) in
  let fresh base =
    if not (Sset.mem base !used) then begin
      used := Sset.add base !used;
      base
    end
    else
      let rec try_i i =
        let cand = Printf.sprintf "%s_%d" base i in
        if Sset.mem cand !used then try_i (i + 1)
        else begin
          used := Sset.add cand !used;
          cand
        end
      in
      try_i 1
  in
  let rec go env = function
    | (True | False) as f -> f
    | Atom a ->
        let on_term = function
          | Var x as t -> ( match List.assoc_opt x env with Some y -> Var y | None -> t)
          | t -> t
        in
        Atom (map_atom_args on_term a)
    | Not f -> Not (go env f)
    | And (f, g) -> And (go env f, go env g)
    | Or (f, g) -> Or (go env f, go env g)
    | Implies (f, g) -> Implies (go env f, go env g)
    | Exists (x, f) ->
        let x' = fresh x in
        Exists (x', go ((x, x') :: env) f)
    | Forall (x, f) ->
        let x' = fresh x in
        Forall (x', go ((x, x') :: env) f)
  in
  go [] f

let rec simplify f =
  match f with
  | True | False | Atom _ -> f
  | Not f -> (
      match simplify f with
      | True -> False
      | False -> True
      | Not g -> g
      | g -> Not g)
  | And (f, g) -> (
      match simplify f, simplify g with
      | False, _ | _, False -> False
      | True, h | h, True -> h
      | f', g' -> if equal f' g' then f' else And (f', g'))
  | Or (f, g) -> (
      match simplify f, simplify g with
      | True, _ | _, True -> True
      | False, h | h, False -> h
      | f', g' -> if equal f' g' then f' else Or (f', g'))
  | Implies (f, g) -> (
      match simplify f, simplify g with
      | False, _ -> True
      | True, h -> h
      | _, True -> True
      | f', g' -> Implies (f', g'))
  | Exists (x, f) -> (
      match simplify f with
      | True -> True
      | False -> False
      | g when not (Sset.mem x (free_set g)) -> g
      | g -> Exists (x, g))
  | Forall (x, f) -> (
      match simplify f with
      | True -> True
      | False -> False
      | g when not (Sset.mem x (free_set g)) -> g
      | g -> Forall (x, g))

let rec elim_implies = function
  | (True | False | Atom _) as f -> f
  | Not f -> Not (elim_implies f)
  | And (f, g) -> And (elim_implies f, elim_implies g)
  | Or (f, g) -> Or (elim_implies f, elim_implies g)
  | Implies (f, g) -> Or (Not (elim_implies f), elim_implies g)
  | Exists (x, f) -> Exists (x, elim_implies f)
  | Forall (x, f) -> Forall (x, elim_implies f)

let nnf f =
  let rec pos = function
    | (True | False | Atom _) as f -> f
    | Not f -> neg f
    | And (f, g) -> And (pos f, pos g)
    | Or (f, g) -> Or (pos f, pos g)
    | Implies (f, g) -> Or (neg f, pos g)
    | Exists (x, f) -> Exists (x, pos f)
    | Forall (x, f) -> Forall (x, pos f)
  and neg = function
    | True -> False
    | False -> True
    | Atom _ as f -> Not f
    | Not f -> pos f
    | And (f, g) -> Or (neg f, neg g)
    | Or (f, g) -> And (neg f, neg g)
    | Implies (f, g) -> And (pos f, neg g)
    | Exists (x, f) -> Forall (x, neg f)
    | Forall (x, f) -> Exists (x, neg f)
  in
  pos f

let dual f =
  let rec go = function
    | True -> False
    | False -> True
    | Atom _ as f -> f
    | Not f -> Not (go f)
    | And (f, g) -> Or (go f, go g)
    | Or (f, g) -> And (go f, go g)
    | Implies _ -> invalid_arg "Fo.dual: eliminate implications first"
    | Exists (x, f) -> Forall (x, go f)
    | Forall (x, f) -> Exists (x, go f)
  in
  go f

let prenex f =
  let f = standardize_apart (nnf (simplify f)) in
  let rec go = function
    | (True | False | Atom _ | Not _) as f -> ([], f)
    | Exists (x, f) ->
        let prefix, m = go f in
        ((Q_exists, x) :: prefix, m)
    | Forall (x, f) ->
        let prefix, m = go f in
        ((Q_forall, x) :: prefix, m)
    | And (f, g) ->
        let p1, m1 = go f in
        let p2, m2 = go g in
        (p1 @ p2, And (m1, m2))
    | Or (f, g) ->
        let p1, m1 = go f in
        let p2, m2 = go g in
        (p1 @ p2, Or (m1, m2))
    | Implies _ -> assert false
  in
  go f

let prefix_class f =
  let prefix, _ = prenex f in
  match prefix with
  | [] -> `None
  | _ when List.for_all (fun (q, _) -> q = Q_exists) prefix -> `All_exists
  | _ when List.for_all (fun (q, _) -> q = Q_forall) prefix -> `All_forall
  | _ -> `Mixed

let polarities f =
  let f = nnf (elim_implies f) in
  let tbl = Hashtbl.create 8 in
  let note rel pol =
    let merged =
      match Hashtbl.find_opt tbl rel with
      | None -> pol
      | Some p when p = pol -> p
      | Some _ -> `Both
    in
    Hashtbl.replace tbl rel merged
  in
  let rec go = function
    | True | False -> ()
    | Atom a -> note a.rel `Pos
    | Not (Atom a) -> note a.rel `Neg
    | Not f -> go f
    | And (f, g) | Or (f, g) | Implies (f, g) ->
        go f;
        go g
    | Exists (_, f) | Forall (_, f) -> go f
  in
  go f;
  Hashtbl.fold (fun rel pol acc -> (rel, pol) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let is_monotone f = List.for_all (fun (_, pol) -> pol = `Pos) (polarities f)
let is_unate f = List.for_all (fun (_, pol) -> pol <> `Both) (polarities f)

let pp_term ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Const v -> Value.pp ppf v

let pp_atom ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_term)
    a.args

(* Precedence, loosest first: Implies (1), Or (2), And (3), quantifiers and
   Not bind tightest. *)
let pp ppf f =
  let rec go prec ppf f =
    let paren p body =
      if p < prec then Format.fprintf ppf "(%t)" body else body ppf
    in
    match f with
    | True -> Format.pp_print_string ppf "true"
    | False -> Format.pp_print_string ppf "false"
    | Atom a -> pp_atom ppf a
    | Not f -> Format.fprintf ppf "!%a" (go 4) f
    | And (a, b) -> paren 3 (fun ppf -> Format.fprintf ppf "%a && %a" (go 3) a (go 4) b)
    | Or (a, b) -> paren 2 (fun ppf -> Format.fprintf ppf "%a || %a" (go 2) a (go 3) b)
    | Implies (a, b) ->
        paren 1 (fun ppf -> Format.fprintf ppf "%a => %a" (go 2) a (go 1) b)
    | Exists _ | Forall _ ->
        let rec collect q acc = function
          | Exists (x, f) when q = Q_exists -> collect q (x :: acc) f
          | Forall (x, f) when q = Q_forall -> collect q (x :: acc) f
          | f -> (List.rev acc, f)
        in
        let q, kw = match f with Exists _ -> (Q_exists, "exists") | _ -> (Q_forall, "forall") in
        let vars, body = collect q [] f in
        paren 1 (fun ppf ->
            Format.fprintf ppf "%s %s. %a" kw (String.concat " " vars) (go 1) body)
  in
  go 0 ppf f

let to_string f = Format.asprintf "%a" pp f
