type verdict = Safe | Hard

let classify_sjf_cq q =
  if not (Cq.is_self_join_free q) then
    invalid_arg "Dichotomy.classify_sjf_cq: query has self-joins";
  if Cq.is_hierarchical q then Safe else Hard

let classify_sentence_sjf q =
  match Ucq.of_sentence q with
  | exception Ucq.Unsupported _ -> None
  | ucq, _mode -> (
      match Ucq.minimize ucq with
      | [ cq ] when Cq.is_self_join_free cq -> Some (classify_sjf_cq cq)
      | _ -> None)

let pp_verdict ppf = function
  | Safe -> Format.pp_print_string ppf "PTIME"
  | Hard -> Format.pp_print_string ppf "#P-hard"
