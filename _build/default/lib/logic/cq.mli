(** Boolean conjunctive queries.

    A CQ is a set of atoms whose variables are all implicitly existentially
    quantified (Eq. (6) of the paper). Atoms may carry a [comp] flag marking
    a complemented (negated) relation symbol — this is how unate sentences
    are reduced to the monotone case (Sec. 4): a complemented atom over
    relation [R] behaves exactly like a positive atom over a fresh relation
    [R'] whose tuple probabilities are [1 - p].

    The module provides the classical machinery the dichotomy rests on:
    the hierarchy test (Def. 4.2), homomorphism-based containment,
    equivalence and minimisation, and variable-connectivity components. *)

type atom = {
  rel : string;  (** relation name *)
  comp : bool;  (** complemented-symbol flag *)
  args : Fo.term list;
}

type t = atom list
(** Invariant kept by the constructors below: atoms sorted and without
    duplicates. *)

val make : atom list -> t
val atom : ?comp:bool -> string -> Fo.term list -> atom
val of_vars : ?comp:bool -> string -> string list -> atom

val compare : t -> t -> int
val equal_syntactic : t -> t -> bool

val vars : t -> string list
(** Variables of the query, sorted, without duplicates. *)

val symbols : t -> (string * bool) list
(** The (relation, complemented) symbols used, without duplicates. *)

val rel_names : t -> string list
(** Underlying relation names, without duplicates — the right notion for
    probabilistic-independence checks. *)

val is_ground : t -> bool

val atoms_of_var : t -> string -> atom list
(** [at(x)] from Def. 4.2: the atoms containing the variable. *)

val is_hierarchical : t -> bool
(** Def. 4.2: for any two variables, their atom sets are nested or
    disjoint. *)

val is_self_join_free : t -> bool
(** No relation symbol occurs twice. *)

val subst_const : string -> Probdb_core.Value.t -> t -> t
val rename_var : string -> string -> t -> t

val standardize_apart : avoid:string list -> t -> t
(** Renames all variables to be disjoint from [avoid]; returns the renamed
    query. *)

val conjoin : t -> t -> t
(** Conjunction of two Boolean CQs, standardising the second apart — this
    is the [Q_i ∧ Q_j] of the inclusion–exclusion formula (Sec. 5). *)

val connected_components : t -> t list
(** Partition of the atoms by variable connectivity. Ground atoms are
    singleton components. *)

val homomorphism : from:t -> into:t -> (string * Fo.term) list option
(** A homomorphism maps the variables of [from] to terms of [into] such
    that every atom of [from] lands on an atom of [into] (constants fixed,
    [comp] flags respected). Returns a witness when one exists. *)

val contained : t -> t -> bool
(** [contained q1 q2]: [q1 ⊑ q2] (every world satisfying [q1] satisfies
    [q2]), decided by a homomorphism from [q2] into [q1]
    (Chandra–Merlin). *)

val equivalent : t -> t -> bool

val minimize : t -> t
(** The core of the query: a minimal equivalent subquery, computed by
    repeatedly retracting redundant atoms. *)

val to_fo : t -> Fo.t
(** The sentence [∃ vars. /\ atoms], complemented atoms becoming negated
    atoms. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
