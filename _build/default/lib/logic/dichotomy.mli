(** The small dichotomy: safety of self-join-free conjunctive queries.

    Theorem 4.3 of the paper: a self-join-free CQ is computable in
    polynomial time iff it is hierarchical (Def. 4.2), and otherwise it is
    #P-hard; the classification itself is trivially cheap (AC⁰).

    The classifier for the full unate ∃*/∀* language (Thm. 4.1) is
    [Probdb_lifted.Lift.classify]: by Theorem 5.1 the lifted-inference rules
    succeed exactly on the polynomial-time queries, so running them
    symbolically decides safety. This module covers the self-join-free
    special case where the syntactic test is immediate, and documents known
    boundary examples. *)

type verdict =
  | Safe  (** PQE(Q) is in polynomial time *)
  | Hard  (** PQE(Q) is #P-hard *)

val classify_sjf_cq : Cq.t -> verdict
(** Theorem 4.3. Raises [Invalid_argument] when the query has self-joins
    (the hierarchy criterion is not valid there: [∃x∃y∃z R(x,y) ∧ R(y,z)]
    is hierarchical yet #P-hard). *)

val classify_sentence_sjf : Fo.t -> verdict option
(** Convenience wrapper: reduces a unate ∃*/∀* sentence to a UCQ and, when
    the result is a single self-join-free CQ, classifies it. [None] when the
    reduction fails or the query is not a self-join-free CQ. *)

val pp_verdict : Format.formatter -> verdict -> unit
