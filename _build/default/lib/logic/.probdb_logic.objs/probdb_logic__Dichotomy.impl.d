lib/logic/dichotomy.ml: Cq Format Ucq
