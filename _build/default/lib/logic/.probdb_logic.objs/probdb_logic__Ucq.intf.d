lib/logic/ucq.mli: Cq Fo Format
