lib/logic/brute_force.mli: Fo Probdb_core
