lib/logic/parser.mli: Fo
