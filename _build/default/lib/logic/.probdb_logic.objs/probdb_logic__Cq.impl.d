lib/logic/cq.ml: Array Bool Fo Format Fun Hashtbl List Option Printf Probdb_core Set String
