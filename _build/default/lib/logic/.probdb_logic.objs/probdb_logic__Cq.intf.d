lib/logic/cq.mli: Fo Format Probdb_core
