lib/logic/semantics.mli: Fo Probdb_core
