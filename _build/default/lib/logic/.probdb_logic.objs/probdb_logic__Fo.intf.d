lib/logic/fo.mli: Format Probdb_core
