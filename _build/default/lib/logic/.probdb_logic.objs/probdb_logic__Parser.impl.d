lib/logic/parser.ml: Fo List Printf Probdb_core String
