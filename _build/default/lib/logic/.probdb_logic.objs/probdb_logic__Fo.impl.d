lib/logic/fo.ml: Format Hashtbl Int List Printf Probdb_core Set String
