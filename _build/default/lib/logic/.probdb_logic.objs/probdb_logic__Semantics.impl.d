lib/logic/semantics.ml: Fo List Printf Probdb_core
