lib/logic/dichotomy.mli: Cq Fo Format
