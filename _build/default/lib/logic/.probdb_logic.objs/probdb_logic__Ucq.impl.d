lib/logic/ucq.ml: Cq Fo Format List Printf String
