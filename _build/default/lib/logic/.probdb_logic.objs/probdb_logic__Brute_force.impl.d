lib/logic/brute_force.ml: Fo List Printf Probdb_core Semantics String
