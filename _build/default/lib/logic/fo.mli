(** First-order logic over a relational vocabulary.

    Queries in this repository are FO sentences (Sec. 2 of the paper):
    Boolean combinations of relational atoms under ∃/∀ quantifiers. This
    module provides the AST, substitution, standard normal forms (negation
    normal form, prenex form), the dual query of Sec. 2, and the syntactic
    classifications (monotone, unate, quantifier prefix) that the dichotomy
    theorem (Thm. 4.1) is stated for. *)

type term =
  | Var of string
  | Const of Probdb_core.Value.t

type atom = { rel : string; args : term list }

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t

type quantifier = Q_exists | Q_forall

(** {1 Constructors} *)

val atom : string -> term list -> t
val rel : string -> string list -> t
(** [rel "R" ["x"; "y"]] is the atom [R(x, y)] with variable arguments. *)

val conj : t list -> t
(** Right-nested conjunction; [conj [] = True]. *)

val disj : t list -> t
val exists : string list -> t -> t
val forall : string list -> t -> t

(** {1 Syntax inspection} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val compare_term : term -> term -> int
val compare_atom : atom -> atom -> int

val free_vars : t -> string list
(** Free variables, sorted, without duplicates. *)

val is_sentence : t -> bool
val atoms : t -> atom list
(** All atom occurrences, in syntactic order. *)

val relations : t -> (string * int) list
(** Relation symbols with arities, sorted by name. Raises [Invalid_argument]
    if a symbol is used with two different arities. *)

val constants : t -> Probdb_core.Value.t list

val size : t -> int

(** {1 Substitution and renaming} *)

val subst_const : string -> Probdb_core.Value.t -> t -> t
(** [subst_const x a q] is [q[a/x]]: replaces free occurrences of the
    variable by the constant (no capture is possible). *)

val subst_var : string -> string -> t -> t
(** [subst_var x y q] renames free occurrences of [x] to [y]. Raises
    [Invalid_argument] if [y] would be captured by a quantifier of [q]. *)

val standardize_apart : ?reserved:string list -> t -> t
(** Renames bound variables so that each quantifier binds a distinct
    variable, distinct from all free variables and from [reserved]. *)

(** {1 Normal forms and transforms} *)

val simplify : t -> t
(** Constant propagation and trivial-identity elimination. *)

val elim_implies : t -> t

val nnf : t -> t
(** Negation normal form; also eliminates implications. *)

val dual : t -> t
(** The dual query of Sec. 2: swaps ∧/∨ and ∃/∀. Defined on
    implication-free formulas; raises [Invalid_argument] otherwise. For any
    sentence, [p_D(dual Q) = 1 - p_{D^c}(Q)] where [D^c] complements the
    probability of every possible tuple. *)

val prenex : t -> (quantifier * string) list * t
(** Prenex normal form of an implication-free NNF sentence: the quantifier
    prefix and the quantifier-free matrix. The input is normalised first. *)

val prefix_class : t -> [ `All_exists | `All_forall | `Mixed | `None ]
(** Classification of the prenex quantifier prefix ([`None] when the
    sentence is quantifier-free). *)

val polarities : t -> (string * [ `Pos | `Neg | `Both ]) list
(** Occurrence polarity of each relation symbol (computed on the NNF). *)

val is_monotone : t -> bool
(** All symbols occur positively (in NNF: no negation). *)

val is_unate : t -> bool
(** Every symbol occurs with a single polarity (Sec. 4). *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_atom : Format.formatter -> atom -> unit
val pp_term : Format.formatter -> term -> unit
