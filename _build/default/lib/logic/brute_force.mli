(** Exact PQE by possible-world enumeration — the ground-truth oracle.

    Computes [p_D(Q) = Σ_{W ⊨ Q} p_D(W)] (Eq. (1) of the paper) literally.
    Exponential in the TID's support size; every other inference method in
    this repository is validated against it on small inputs. *)

val probability : Probdb_core.Tid.t -> Fo.t -> float
(** Probability of a Boolean query. Raises [Invalid_argument] on open
    formulas and [Probdb_core.Worlds.Too_large] on oversized supports. *)

val answers :
  Probdb_core.Tid.t -> free:string list -> Fo.t ->
  (Probdb_core.Value.t list * float) list
(** Non-Boolean queries: the marginal probability of each binding of the
    free variables to domain values, listing only bindings with positive
    probability, sorted by binding. *)

val complement_tid :
  Probdb_core.Tid.t -> (string * int) list -> Probdb_core.Tid.t
(** [complement_tid db arities] materialises, for each listed relation, all
    possible tuples over the domain with complemented probabilities
    [1 - p(t)] (so unlisted tuples get probability 1). This is the database
    [D^c] for which [p_D(dual Q) = 1 - p_{D^c}(Q)] (Sec. 2). Intended for
    tiny domains. *)
