(** Unions of conjunctive queries, and the reduction of unate ∃*/∀*
    sentences to them.

    A UCQ is a disjunction of Boolean CQs. Theorem 4.1 of the paper states
    its dichotomy for unate FO sentences whose quantifier prefix is all-∃ or
    all-∀; this module performs the reduction described there: negated
    symbols become complemented atoms (probability [1 - p]), and an all-∀
    sentence is replaced by the negation-dual all-∃ sentence whose
    probability is the complement. *)

type t = Cq.t list
(** Disjunction; [[]] is [false]. *)

type mode =
  | Direct  (** [p(Q) = p(ucq)] *)
  | Complemented  (** [p(Q) = 1 - p(ucq)] *)

exception Unsupported of string
(** Raised when a sentence is outside the unate ∃*/∀* fragment. *)

val of_sentence : Fo.t -> t * mode
(** Reduction of a unate ∃* or ∀* sentence (Thm. 4.1's language) to a UCQ.
    Raises {!Unsupported} on sentences outside the fragment and
    [Invalid_argument] on open formulas. *)

val apply_mode : mode -> float -> float

val minimize : t -> t
(** Minimises every disjunct and removes disjuncts contained in another —
    the UCQ core. *)

val contained : t -> t -> bool
(** Sagiv–Yannakakis: [Q1 ⊑ Q2] iff every disjunct of [Q1] is contained in
    some disjunct of [Q2]. *)

val equivalent : t -> t -> bool

val vars : t -> string list
val rel_names : t -> string list

val conjoin : t -> t -> t
(** Distributes conjunction over the two unions: the disjuncts of the
    result are pairwise [Cq.conjoin]s. *)

val disjoin : t -> t -> t

val to_fo : t -> Fo.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
