(** Tarskian satisfaction of FO formulas in a possible world.

    [W |= Q] from Sec. 2 of the paper: quantifiers range over the given
    finite domain, atoms are looked up in the world. *)

type env = (string * Probdb_core.Value.t) list
(** Assignment of values to free variables. *)

val eval_term : env -> Fo.term -> Probdb_core.Value.t
(** Raises [Invalid_argument] on an unbound variable. *)

val holds :
  ?env:env -> domain:Probdb_core.Value.t list -> Probdb_core.World.t -> Fo.t -> bool
(** [holds ~domain w q] decides [w |= q]. Free variables of [q] must be
    covered by [env]. *)

val holds_in_tid : Probdb_core.Tid.t -> Probdb_core.World.t -> Fo.t -> bool
(** {!holds} with the TID's domain — the common case when enumerating the
    TID's possible worlds. *)
