module Core = Probdb_core

let probability db q =
  if not (Fo.is_sentence q) then
    invalid_arg "Brute_force.probability: query has free variables";
  Core.Worlds.probability db (fun w -> Semantics.holds_in_tid db w q)

let answers db ~free q =
  let remaining = List.filter (fun v -> not (List.mem v free)) (Fo.free_vars q) in
  if remaining <> [] then
    invalid_arg
      (Printf.sprintf "Brute_force.answers: undeclared free variables %s"
         (String.concat ", " remaining));
  let domain = Core.Tid.domain db in
  let rec bindings = function
    | [] -> [ [] ]
    | _ :: rest ->
        let tails = bindings rest in
        List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) domain
  in
  bindings free
  |> List.filter_map (fun binding ->
         let env = List.combine free binding in
         let p =
           Core.Worlds.probability db (fun w -> Semantics.holds ~env ~domain w q)
         in
         if p > 0.0 then Some (binding, p) else None)
  |> List.sort (fun (a, _) (b, _) -> Core.Tuple.compare a b)

let complement_tid db arities =
  let domain = Core.Tid.domain db in
  let rec tuples k =
    if k = 0 then [ [] ]
    else
      let rest = tuples (k - 1) in
      List.concat_map (fun v -> List.map (fun t -> v :: t) rest) domain
  in
  let complement_relation name arity =
    let rows = List.map (fun t -> (t, 1.0 -. Core.Tid.prob db name t)) (tuples arity) in
    Core.Relation.make (Core.Schema.of_arity name arity) rows
  in
  Core.Tid.make ~domain (List.map (fun (name, k) -> complement_relation name k) arities)
