type t = Cq.t list

type mode = Direct | Complemented

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* DNF of a quantifier-free NNF matrix, as lists of signed atoms. A disjunct
   containing complementary literals is dropped (cannot arise for unate
   input, kept as a safety net). *)
let matrix_to_dnf matrix =
  let product ds es =
    List.concat_map (fun d -> List.map (fun e -> d @ e) ds) es
  in
  let rec go = function
    | Fo.True -> [ [] ]
    | Fo.False -> []
    | Fo.Atom a -> [ [ Cq.atom a.Fo.rel a.Fo.args ] ]
    | Fo.Not (Fo.Atom a) -> [ [ Cq.atom ~comp:true a.Fo.rel a.Fo.args ] ]
    | Fo.Or (f, g) -> go f @ go g
    | Fo.And (f, g) -> product (go f) (go g)
    | f -> unsupported "non-NNF construct in matrix: %s" (Fo.to_string f)
  in
  let contradictory cq =
    List.exists
      (fun (a : Cq.atom) ->
        List.exists
          (fun (b : Cq.atom) ->
            String.equal a.Cq.rel b.Cq.rel && a.Cq.comp <> b.Cq.comp
            && List.compare Fo.compare_term a.Cq.args b.Cq.args = 0)
          cq)
      cq
  in
  go matrix |> List.map Cq.make |> List.filter (fun cq -> not (contradictory cq))

let of_sentence q =
  if not (Fo.is_sentence q) then invalid_arg "Ucq.of_sentence: open formula";
  let q = Fo.simplify (Fo.nnf (Fo.elim_implies q)) in
  if not (Fo.is_unate q) then unsupported "sentence is not unate: %s" (Fo.to_string q);
  let build sentence =
    let prefix, matrix = Fo.prenex sentence in
    if List.exists (fun (k, _) -> k = Fo.Q_forall) prefix then
      unsupported "mixed quantifier prefix: %s" (Fo.to_string sentence)
    else matrix_to_dnf matrix
  in
  match Fo.prefix_class q with
  | `None | `All_exists -> (build q, Direct)
  | `All_forall -> (build (Fo.simplify (Fo.nnf (Fo.Not q))), Complemented)
  | `Mixed -> unsupported "mixed quantifier prefix: %s" (Fo.to_string q)

let apply_mode mode p = match mode with Direct -> p | Complemented -> 1.0 -. p

let minimize ucq =
  let ucq = List.map Cq.minimize ucq |> List.sort_uniq Cq.compare in
  (* Drop disjunct q when it is contained in a *different* remaining
     disjunct; process in order so that exactly one representative of each
     equivalence class survives. *)
  let rec filter kept = function
    | [] -> List.rev kept
    | q :: rest ->
        let absorbed_by q' = Cq.contained q q' in
        if List.exists absorbed_by kept || List.exists absorbed_by rest then
          filter kept rest
        else filter (q :: kept) rest
  in
  filter [] ucq

let contained q1 q2 =
  List.for_all (fun c -> List.exists (fun d -> Cq.contained c d) q2) q1

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let vars ucq = List.concat_map Cq.vars ucq |> List.sort_uniq String.compare

let rel_names ucq = List.concat_map Cq.rel_names ucq |> List.sort_uniq String.compare

let conjoin q1 q2 =
  List.concat_map (fun c -> List.map (fun d -> Cq.conjoin c d) q2) q1
  |> List.sort_uniq Cq.compare

let disjoin q1 q2 = List.sort_uniq Cq.compare (q1 @ q2)

let to_fo ucq = Fo.disj (List.map Cq.to_fo ucq)

let pp ppf = function
  | [] -> Format.pp_print_string ppf "false"
  | ucq ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ || ")
        (fun ppf cq -> Format.fprintf ppf "(%a)" Cq.pp cq)
        ppf ucq

let to_string ucq = Format.asprintf "%a" pp ucq
