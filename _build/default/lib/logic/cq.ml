module Sset = Set.Make (String)

type atom = { rel : string; comp : bool; args : Fo.term list }

type t = atom list

let compare_atom a b =
  match String.compare a.rel b.rel with
  | 0 -> (
      match Bool.compare a.comp b.comp with
      | 0 -> List.compare Fo.compare_term a.args b.args
      | c -> c)
  | c -> c

let make atoms = List.sort_uniq compare_atom atoms
let atom ?(comp = false) rel args = { rel; comp; args }
let of_vars ?comp rel vars = atom ?comp rel (List.map (fun v -> Fo.Var v) vars)
let compare = List.compare compare_atom
let equal_syntactic a b = compare a b = 0

let atom_vars a =
  List.filter_map (function Fo.Var x -> Some x | Fo.Const _ -> None) a.args

let vars q = List.concat_map atom_vars q |> List.sort_uniq String.compare

let symbols q =
  List.map (fun a -> (a.rel, a.comp)) q
  |> List.sort_uniq (fun (r1, c1) (r2, c2) ->
         match String.compare r1 r2 with 0 -> Bool.compare c1 c2 | c -> c)

let rel_names q = List.map (fun a -> a.rel) q |> List.sort_uniq String.compare
let is_ground q = vars q = []

let atoms_of_var q x = List.filter (fun a -> List.mem x (atom_vars a)) q

let is_hierarchical q =
  let module Aset = Set.Make (struct
    type nonrec t = atom

    let compare = compare_atom
  end) in
  let atom_sets = List.map (fun x -> Aset.of_list (atoms_of_var q x)) (vars q) in
  let ok s1 s2 =
    Aset.subset s1 s2 || Aset.subset s2 s1 || Aset.is_empty (Aset.inter s1 s2)
  in
  List.for_all (fun s1 -> List.for_all (ok s1) atom_sets) atom_sets

let is_self_join_free q =
  let names = List.map (fun a -> a.rel) q in
  List.length names = List.length (List.sort_uniq String.compare names)

let map_args f q = make (List.map (fun a -> { a with args = List.map f a.args }) q)

let subst_const x v q =
  map_args (function Fo.Var y when String.equal x y -> Fo.Const v | t -> t) q

let rename_var x y q =
  map_args (function Fo.Var z when String.equal x z -> Fo.Var y | t -> t) q

let standardize_apart ~avoid q =
  let avoid = ref (Sset.of_list avoid) in
  let renaming =
    List.map
      (fun x ->
        let rec fresh base i =
          let cand = if i = 0 then base else Printf.sprintf "%s_%d" base i in
          if Sset.mem cand !avoid then fresh base (i + 1)
          else begin
            avoid := Sset.add cand !avoid;
            cand
          end
        in
        (x, fresh x 0))
      (vars q)
  in
  map_args
    (function
      | Fo.Var x -> Fo.Var (List.assoc x renaming)
      | t -> t)
    q

let conjoin q1 q2 =
  let q2 = standardize_apart ~avoid:(vars q1) q2 in
  make (q1 @ q2)

let connected_components q =
  (* Union-find over atom indices, linking atoms that share a variable. *)
  let atoms = Array.of_list q in
  let n = Array.length atoms in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri, rj = find i, find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let var_home = Hashtbl.create 16 in
  Array.iteri
    (fun i a ->
      List.iter
        (fun x ->
          match Hashtbl.find_opt var_home x with
          | Some j -> union i j
          | None -> Hashtbl.add var_home x i)
        (atom_vars a))
    atoms;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i a ->
      let r = find i in
      Hashtbl.replace groups r (a :: (Option.value ~default:[] (Hashtbl.find_opt groups r))))
    atoms;
  Hashtbl.fold (fun _ atoms acc -> make atoms :: acc) groups []
  |> List.sort compare

let homomorphism ~from ~into =
  (* Backtracking search for a map h from vars(from) to terms(into) sending
     every atom of [from] onto some atom of [into]. *)
  let candidates a =
    List.filter
      (fun b ->
        String.equal a.rel b.rel && a.comp = b.comp
        && List.length a.args = List.length b.args)
      into
  in
  let rec match_args env pairs =
    match pairs with
    | [] -> Some env
    | (Fo.Const u, Fo.Const v) :: rest ->
        if Probdb_core.Value.equal u v then match_args env rest else None
    | (Fo.Const _, Fo.Var _) :: _ -> None
    | (Fo.Var x, tgt) :: rest -> (
        match List.assoc_opt x env with
        | Some t -> if Fo.compare_term t tgt = 0 then match_args env rest else None
        | None -> match_args ((x, tgt) :: env) rest)
  in
  let rec go env = function
    | [] -> Some env
    | a :: rest ->
        let rec try_candidates = function
          | [] -> None
          | b :: bs -> (
              match match_args env (List.combine a.args b.args) with
              | Some env' -> (
                  match go env' rest with Some e -> Some e | None -> try_candidates bs)
              | None -> try_candidates bs)
        in
        try_candidates (candidates a)
  in
  go [] from

let contained q1 q2 = Option.is_some (homomorphism ~from:q2 ~into:q1)
let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let minimize q =
  (* Retract one atom at a time: q ≡ q \ {a} iff there is a homomorphism
     from q into q \ {a} (the inclusion gives the converse direction). *)
  let rec shrink q =
    let try_drop a =
      let q' = List.filter (fun b -> not (compare_atom a b = 0)) q in
      if q' <> [] && Option.is_some (homomorphism ~from:q ~into:q') then Some q'
      else None
    in
    match List.find_map try_drop q with Some q' -> shrink q' | None -> q
  in
  shrink q

let to_fo q =
  let body =
    Fo.conj
      (List.map
         (fun a ->
           let at = Fo.Atom { rel = a.rel; args = a.args } in
           if a.comp then Fo.Not at else at)
         q)
  in
  Fo.exists (vars q) body

let pp ppf q =
  let pp_atom ppf a =
    Format.fprintf ppf "%s%s(%a)"
      (if a.comp then "!" else "")
      a.rel
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Fo.pp_term)
      a.args
  in
  match q with
  | [] -> Format.pp_print_string ppf "true"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " && ")
        pp_atom ppf q

let to_string q = Format.asprintf "%a" pp q
