lib/engine/engine.ml: Float Format List Printf Probdb_approx Probdb_core Probdb_dpll Probdb_kc Probdb_lifted Probdb_lineage Probdb_logic Probdb_plans Probdb_symmetric String
