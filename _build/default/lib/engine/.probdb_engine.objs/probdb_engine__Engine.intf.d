lib/engine/engine.mli: Format Probdb_core Probdb_logic
