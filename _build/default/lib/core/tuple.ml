type t = Value.t list

let compare = List.compare Value.compare
let equal a b = compare a b = 0
let hash t = Hashtbl.hash (List.map Value.hash t)
let arity = List.length

let pp ppf t =
  Format.fprintf ppf "(%a)" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp) t

let to_string t = Format.asprintf "%a" pp t
let of_ints xs = List.map Value.int xs

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
