lib/core/relation.mli: Format Schema Tuple Value
