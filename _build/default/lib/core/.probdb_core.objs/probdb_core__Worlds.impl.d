lib/core/worlds.ml: List Tid World
