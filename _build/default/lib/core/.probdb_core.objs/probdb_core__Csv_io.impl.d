lib/core/csv_io.ml: Array Filename Fun In_channel List Printf Relation Schema String Sys Tid Tuple Value
