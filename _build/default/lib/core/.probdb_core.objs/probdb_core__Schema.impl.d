lib/core/schema.ml: Format List Printf String
