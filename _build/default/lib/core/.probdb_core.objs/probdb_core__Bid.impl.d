lib/core/bid.ml: Hashtbl List Printf Relation Schema Tuple World
