lib/core/ra.mli: Relation Tuple Value
