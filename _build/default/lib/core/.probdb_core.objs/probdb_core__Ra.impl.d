lib/core/ra.ml: Float List Printf Relation Schema String Tuple Value
