lib/core/tuple.ml: Format Hashtbl List Map Set Value
