lib/core/tid.ml: Format List Map Printf Relation String Value
