lib/core/csv_io.mli: Relation Tid
