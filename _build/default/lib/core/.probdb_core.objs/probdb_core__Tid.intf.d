lib/core/tid.mli: Format Relation Tuple Value
