lib/core/bid.mli: Relation Schema Tuple World
