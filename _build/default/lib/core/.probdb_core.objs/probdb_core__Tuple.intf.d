lib/core/tuple.mli: Format Map Set Value
