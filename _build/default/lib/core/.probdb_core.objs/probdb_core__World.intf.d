lib/core/world.mli: Format Tid Tuple
