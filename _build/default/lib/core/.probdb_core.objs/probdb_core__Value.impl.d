lib/core/value.ml: Bool Format Hashtbl Int String
