lib/core/world.ml: Format List Set String Tid Tuple
