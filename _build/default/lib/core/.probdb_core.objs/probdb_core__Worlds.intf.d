lib/core/worlds.mli: Tid World
