lib/core/relation.ml: Format List Printf Schema Tuple Value
