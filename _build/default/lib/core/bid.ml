type block = { key : Tuple.t; options : (Tuple.t * float) list }

type t = { schema : Schema.t; key_arity : int; blocks : block list }

let check_block schema key_arity b =
  let value_arity = Schema.arity schema - key_arity in
  if Tuple.arity b.key <> key_arity then
    invalid_arg
      (Printf.sprintf "Bid: key %s has arity %d, expected %d" (Tuple.to_string b.key)
         (Tuple.arity b.key) key_arity);
  let seen = Hashtbl.create 8 in
  let total =
    List.fold_left
      (fun acc (value, p) ->
        if Tuple.arity value <> value_arity then
          invalid_arg
            (Printf.sprintf "Bid: option %s has arity %d, expected %d"
               (Tuple.to_string value) (Tuple.arity value) value_arity);
        if p < 0.0 then invalid_arg "Bid: negative probability";
        if Hashtbl.mem seen value then
          invalid_arg
            (Printf.sprintf "Bid: duplicate option %s in block %s" (Tuple.to_string value)
               (Tuple.to_string b.key));
        Hashtbl.add seen value ();
        acc +. p)
      0.0 b.options
  in
  if total > 1.0 +. 1e-9 then
    invalid_arg
      (Printf.sprintf "Bid: block %s probabilities sum to %g > 1" (Tuple.to_string b.key)
         total)

let make schema ~key_arity blocks =
  if key_arity < 0 || key_arity > Schema.arity schema then
    invalid_arg "Bid.make: bad key arity";
  let keys = List.map (fun b -> b.key) blocks in
  if List.length keys <> List.length (List.sort_uniq Tuple.compare keys) then
    invalid_arg "Bid.make: duplicate block key";
  List.iter (check_block schema key_arity) blocks;
  { schema; key_arity; blocks }

let schema t = t.schema
let key_arity t = t.key_arity
let blocks t = t.blocks
let block_count t = List.length t.blocks

let split t tuple =
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else match rest with [] -> (List.rev acc, []) | x :: xs -> take (k - 1) (x :: acc) xs
  in
  take t.key_arity [] tuple

let tuple_prob t tuple =
  let key, value = split t tuple in
  match List.find_opt (fun b -> Tuple.equal b.key key) t.blocks with
  | None -> 0.0
  | Some b -> (
      match List.find_opt (fun (v, _) -> Tuple.equal v value) b.options with
      | Some (_, p) -> p
      | None -> 0.0)

let of_tid_relation rel ~key_arity =
  let schema = Relation.schema rel in
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Relation.fold
    (fun tuple p () ->
      let rec take k acc rest =
        if k = 0 then (List.rev acc, rest)
        else
          match rest with [] -> (List.rev acc, []) | x :: xs -> take (k - 1) (x :: acc) xs
      in
      let key, value = take key_arity [] tuple in
      (match Hashtbl.find_opt tbl key with
      | None ->
          Hashtbl.add tbl key [ (value, p) ];
          order := key :: !order
      | Some opts -> Hashtbl.replace tbl key ((value, p) :: opts)))
    rel ();
  let blocks =
    List.rev_map
      (fun key -> { key; options = List.rev (Hashtbl.find tbl key) })
      !order
  in
  make schema ~key_arity blocks

let to_tid_relation t =
  let rows =
    List.concat_map
      (fun b -> List.map (fun (value, p) -> (b.key @ value, p)) b.options)
      t.blocks
  in
  Relation.make t.schema rows

let fold_worlds f init rel_name t =
  let choices =
    List.fold_left (fun acc b -> acc *. float_of_int (1 + List.length b.options)) 1.0 t.blocks
  in
  if choices > 16_777_216.0 then
    invalid_arg "Bid.fold_worlds: too many block combinations";
  let rec go blocks world p acc =
    match blocks with
    | [] -> f world p acc
    | b :: rest ->
        let taken = List.fold_left (fun s (_, q) -> s +. q) 0.0 b.options in
        (* the "no tuple from this block" outcome *)
        let acc =
          if 1.0 -. taken <= 0.0 then acc else go rest world (p *. (1.0 -. taken)) acc
        in
        List.fold_left
          (fun acc (value, q) ->
            if q = 0.0 then acc
            else go rest (World.add (rel_name, b.key @ value) world) (p *. q) acc)
          acc b.options
  in
  go t.blocks World.empty 1.0 init

let probability t event =
  fold_worlds (fun w p acc -> if event w then acc +. p else acc) 0.0 "bid" t

let expected_size t =
  List.fold_left
    (fun acc b -> acc +. List.fold_left (fun s (_, q) -> s +. q) 0.0 b.options)
    0.0 t.blocks
