(** Database tuples: finite sequences of {!Value.t}.

    A tuple over a relation of arity [k] is a list of [k] values. Tuples are
    ordered lexicographically so they can key maps and sets. *)

type t = Value.t list

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val arity : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [(v1, v2, ..., vk)]. *)

val to_string : t -> string

val of_ints : int list -> t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
