let attr_index r attr =
  let attrs = (Relation.schema r).Schema.attrs in
  let rec find i = function
    | [] ->
        invalid_arg
          (Printf.sprintf "Ra: attribute %s not found in %s" attr (Relation.name r))
    | a :: rest -> if String.equal a attr then i else find (i + 1) rest
  in
  find 0 attrs

let select pred r =
  Relation.make (Relation.schema r)
    (List.filter (fun (t, _) -> pred t) (Relation.rows r))

let select_eq attr v r =
  let i = attr_index r attr in
  select (fun t -> Value.equal (List.nth t i) v) r

let project attrs r =
  let idxs = List.map (attr_index r) attrs in
  let shrink t = List.map (fun i -> List.nth t i) idxs in
  let add map (t, p) =
    let t' = shrink t in
    let p' = match Tuple.Map.find_opt t' map with Some q -> Float.max p q | None -> p in
    Tuple.Map.add t' p' map
  in
  let map = List.fold_left add Tuple.Map.empty (Relation.rows r) in
  Relation.make (Schema.make (Relation.name r) attrs) (Tuple.Map.bindings map)

let rename new_name mapping r =
  let attrs =
    List.map
      (fun a -> match List.assoc_opt a mapping with Some a' -> a' | None -> a)
      (Relation.schema r).Schema.attrs
  in
  Relation.make (Schema.make new_name attrs) (Relation.rows r)

let natural_join ?name r1 r2 =
  let a1 = (Relation.schema r1).Schema.attrs in
  let a2 = (Relation.schema r2).Schema.attrs in
  let shared = List.filter (fun a -> List.mem a a1) a2 in
  let out_attrs = a1 @ List.filter (fun a -> not (List.mem a shared)) a2 in
  let name = match name with Some n -> n | None -> Relation.name r1 ^ "_" ^ Relation.name r2 in
  let idx attrs a =
    let rec find i = function
      | [] -> assert false
      | x :: rest -> if String.equal x a then i else find (i + 1) rest
    in
    find 0 attrs
  in
  let key attrs t = List.map (fun a -> List.nth t (idx attrs a)) shared in
  let extra2 = List.filter (fun a -> not (List.mem a shared)) a2 in
  let rows =
    List.concat_map
      (fun (t1, p1) ->
        List.filter_map
          (fun (t2, p2) ->
            if Tuple.equal (key a1 t1) (key a2 t2) then
              let t = t1 @ List.map (fun a -> List.nth t2 (idx a2 a)) extra2 in
              Some (t, p1 *. p2)
            else None)
          (Relation.rows r2))
      (Relation.rows r1)
  in
  (* Distinct joined tuples can coincide only when shared attrs repeat; rows
     are distinct because both inputs are maps over distinct tuples. *)
  Relation.make (Schema.make name out_attrs) rows

let union r1 r2 =
  if Relation.arity r1 <> Relation.arity r2 then
    invalid_arg "Ra.union: arity mismatch";
  let combine p q = 1.0 -. ((1.0 -. p) *. (1.0 -. q)) in
  let rows =
    List.fold_left
      (fun map (t, p) ->
        let p' = match Tuple.Map.find_opt t map with Some q -> combine p q | None -> p in
        Tuple.Map.add t p' map)
      Tuple.Map.empty
      (Relation.rows r1 @ Relation.rows r2)
  in
  Relation.make (Relation.schema r1) (Tuple.Map.bindings rows)

let difference r1 r2 =
  if Relation.arity r1 <> Relation.arity r2 then
    invalid_arg "Ra.difference: arity mismatch";
  select (fun t -> not (Relation.mem r2 t)) r1
