type fact = string * Tuple.t

module Fset = Set.Make (struct
  type t = fact

  let compare (r1, t1) (r2, t2) =
    match String.compare r1 r2 with 0 -> Tuple.compare t1 t2 | c -> c
end)

type t = Fset.t

let empty = Fset.empty
let of_facts facts = Fset.of_list facts
let add = Fset.add
let remove = Fset.remove
let mem w r t = Fset.mem (r, t) w
let facts w = Fset.elements w
let cardinal = Fset.cardinal
let union = Fset.union

let tuples_of w name =
  Fset.fold (fun (r, t) acc -> if String.equal r name then t :: acc else acc) w []
  |> List.rev

let of_tid_support db =
  List.fold_left (fun w (r, t, _) -> add (r, t) w) empty (Tid.support db)

let compare = Fset.compare
let equal = Fset.equal

let pp ppf w =
  let pp_fact ppf (r, t) = Format.fprintf ppf "%s%a" r Tuple.pp t in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_fact)
    (facts w)
