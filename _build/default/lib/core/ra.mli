(** Set-semantics relational algebra over probabilistic relations.

    These operators implement ordinary data processing (the non-inference
    half of PQE, Sec. 6 of the paper) on relations whose probability column
    is simply carried along; the probability-aware operators used by
    extensional plans live in [Probdb_plans]. Attributes are addressed by
    name. *)

val select : (Tuple.t -> bool) -> Relation.t -> Relation.t
(** Keeps the rows whose tuple satisfies the predicate. *)

val select_eq : string -> Value.t -> Relation.t -> Relation.t
(** [select_eq attr v r] keeps rows whose [attr] column equals [v]. Raises
    [Invalid_argument] on an unknown attribute. *)

val project : string list -> Relation.t -> Relation.t
(** Duplicate-eliminating projection onto the named attributes. When several
    input rows collapse onto one output tuple, the output probability is the
    maximum of theirs (a deterministic placeholder; probabilistic projection
    is [Probdb_plans.Ptable.project_independent]). *)

val rename : string -> (string * string) list -> Relation.t -> Relation.t
(** [rename new_name mapping r] renames the relation and the listed
    attributes. *)

val natural_join : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Natural join on shared attribute names. Output attributes are the union
    (left attributes first); output probability is the product of the two
    input probabilities, matching the modified join of Sec. 6. *)

val union : Relation.t -> Relation.t -> Relation.t
(** Set union of two union-compatible relations. A tuple present in both
    keeps the disjoint-or combination [1 - (1-p)(1-q)]. *)

val difference : Relation.t -> Relation.t -> Relation.t
(** Tuples of the first relation not listed in the second. *)

val attr_index : Relation.t -> string -> int
(** Position of the attribute in the schema. Raises [Invalid_argument] when
    absent. *)
