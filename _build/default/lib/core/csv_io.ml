let split_line line = String.split_on_char ',' line |> List.map String.trim

let parse_row ~path ~lineno line =
  match List.rev (split_line line) with
  | p :: rev_values when rev_values <> [] -> (
      match float_of_string_opt p with
      | Some p -> (List.rev_map Value.of_string rev_values, p)
      | None ->
          failwith
            (Printf.sprintf "%s:%d: cannot parse probability %S" path lineno p))
  | _ -> failwith (Printf.sprintf "%s:%d: expected v1,...,vk,p" path lineno)

let load_relation name path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec read lineno acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some line ->
            let line = String.trim line in
            if line = "" || String.length line > 0 && line.[0] = '#' then
              read (lineno + 1) acc
            else read (lineno + 1) (parse_row ~path ~lineno line :: acc)
      in
      let rows = read 1 [] in
      match rows with
      | [] -> Relation.make (Schema.of_arity name 0) []
      | (t, _) :: _ -> Relation.make (Schema.of_arity name (Tuple.arity t)) rows)

let load_dir dir =
  let files = Sys.readdir dir in
  Array.sort String.compare files;
  let rels =
    Array.to_list files
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".csv" then
             Some (load_relation (Filename.remove_extension f) (Filename.concat dir f))
           else None)
  in
  Tid.make rels

let save_relation path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Relation.fold
        (fun t p () ->
          let vals = List.map Value.to_string t in
          output_string oc (String.concat "," (vals @ [ Printf.sprintf "%.17g" p ]));
          output_char oc '\n')
        r ())

let save_dir dir db =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun r -> save_relation (Filename.concat dir (Relation.name r ^ ".csv")) r)
    (Tid.relations db)
