(** Exact enumeration of the possible worlds of a TID.

    With [m] listed tuples there are [2^m] worlds (Eq. (3) of the paper), so
    enumeration is only feasible for small supports. It is the ground-truth
    oracle every other inference method in this repository is tested
    against. *)

val max_support : int
(** Enumeration refuses supports larger than this (default 24). *)

exception Too_large of int
(** Raised with the support size when it exceeds {!max_support}. *)

val fold : (World.t -> float -> 'a -> 'a) -> 'a -> Tid.t -> 'a
(** [fold f init db] folds [f world probability] over all [2^m] worlds.
    World probabilities are products per Eq. (3); they sum to 1 when the TID
    is standard. Raises {!Too_large} on oversized supports. *)

val probability : Tid.t -> (World.t -> bool) -> float
(** [probability db sat] is the total probability of the worlds satisfying
    [sat] — Eq. (1) of the paper with [sat] playing the role of [W |= Q]. *)

val expectation : Tid.t -> (World.t -> float) -> float
(** Expected value of a world statistic. *)

val count : Tid.t -> int
(** Number of possible worlds ([2^support]). *)
