type t = { name : string; attrs : string list }

let make name attrs = { name; attrs }

let of_arity name k =
  { name; attrs = List.init k (fun i -> Printf.sprintf "a%d" (i + 1)) }

let arity s = List.length s.attrs
let equal a b = String.equal a.name b.name && List.equal String.equal a.attrs b.attrs

let pp ppf s =
  Format.fprintf ppf "%s(%a)" s.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Format.pp_print_string)
    s.attrs
