type t =
  | Int of int
  | Str of string
  | Bool of bool

let rank = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)
  | Bool b -> Hashtbl.hash (2, b)

let to_string = function
  | Int x -> string_of_int x
  | Str s -> s
  | Bool b -> string_of_bool b

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_string s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match s with
      | "true" -> Bool true
      | "false" -> Bool false
      | _ -> Str s)

let int i = Int i
let str s = Str s
