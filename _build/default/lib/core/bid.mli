(** Block-independent-disjoint (BID) probabilistic databases.

    The main alternative representation the paper mentions next to TIDs
    (Sec. 1, citing [16]): tuples are grouped into {e blocks} by a key; the
    tuples of one block are mutually exclusive (at most one is present, a
    {e disjoint} choice), while distinct blocks are independent. BID tables
    model attribute-level uncertainty: "sensor 7 read 40°, 41° or 42°, with
    probabilities .2/.5/.3".

    A BID relation over schema (K, A) assigns to each key a distribution
    over the possible A-values whose probabilities sum to at most 1 (the
    slack is the probability that the block contributes no tuple). *)

type block = {
  key : Tuple.t;
  options : (Tuple.t * float) list;
      (** non-key attribute values with probabilities; sum ≤ 1 *)
}

type t

val make : Schema.t -> key_arity:int -> block list -> t
(** [make schema ~key_arity blocks]: the first [key_arity] attributes form
    the key. Raises [Invalid_argument] on duplicate keys, duplicate options
    within a block, probability sums > 1 (beyond 1e-9 slack), negative
    probabilities, or arity mismatches. *)

val schema : t -> Schema.t
val key_arity : t -> int
val blocks : t -> block list
val block_count : t -> int

val tuple_prob : t -> Tuple.t -> float
(** Marginal probability of a full tuple (key ++ value). *)

val of_tid_relation : Relation.t -> key_arity:int -> t
(** Reinterprets a relation's tuples as blocks keyed by the first
    attributes. Raises [Invalid_argument] when some block's probabilities
    exceed 1. *)

val to_tid_relation : t -> Relation.t
(** Forgets the disjointness, keeping the marginals — the {e independent
    approximation} of the BID table. Query answers on it generally differ;
    see {!fold_worlds} for the exact semantics. *)

val fold_worlds : (World.t -> float -> 'a -> 'a) -> 'a -> string -> t -> 'a
(** Exact possible-worlds enumeration: one choice (or none) per block,
    blocks independent. The string names the relation facts are filed
    under. Product of per-block sizes must stay under 2^24. *)

val probability : t -> (World.t -> bool) -> float
(** Probability of an event under the exact BID semantics. *)

val expected_size : t -> float
(** Expected number of tuples present. *)
