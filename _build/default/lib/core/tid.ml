module Smap = Map.Make (String)

type t = { rels : Relation.t Smap.t; domain : Value.t list }

let compute_domain extra rels =
  List.concat_map Relation.values rels
  |> List.rev_append extra
  |> List.sort_uniq Value.compare

let make ?(domain = []) rels =
  let add map r =
    let name = Relation.name r in
    if Smap.mem name map then
      invalid_arg (Printf.sprintf "Tid.make: duplicate relation %s" name);
    Smap.add name r map
  in
  { rels = List.fold_left add Smap.empty rels; domain = compute_domain domain rels }

let relations db = Smap.bindings db.rels |> List.map snd
let relation db name = Smap.find name db.rels
let relation_opt db name = Smap.find_opt name db.rels
let mem_relation db name = Smap.mem name db.rels
let domain db = db.domain
let domain_size db = List.length db.domain

let prob db name t =
  match Smap.find_opt name db.rels with
  | None -> 0.0
  | Some r -> Relation.prob r t

let support_size db = Smap.fold (fun _ r acc -> acc + Relation.cardinal r) db.rels 0

let support db =
  Smap.fold
    (fun name r acc -> Relation.fold (fun t p acc -> (name, t, p) :: acc) r acc)
    db.rels []
  |> List.rev

let is_standard db = Smap.for_all (fun _ r -> Relation.is_standard r) db.rels

let map_probs f db =
  { db with rels = Smap.mapi (fun name r -> Relation.map_probs (f name) r) db.rels }

let add_relation db r =
  let name = Relation.name r in
  if Smap.mem name db.rels then
    invalid_arg (Printf.sprintf "Tid.add_relation: relation %s already exists" name);
  { rels = Smap.add name r db.rels; domain = compute_domain db.domain [ r ] }

let replace_relation db r =
  { rels = Smap.add (Relation.name r) r db.rels;
    domain = compute_domain db.domain [ r ] }

let restrict db names =
  { db with rels = Smap.filter (fun name _ -> List.mem name names) db.rels }

let pp ppf db =
  Format.fprintf ppf "@[<v>";
  Smap.iter (fun _ r -> Format.fprintf ppf "%a@ " Relation.pp r) db.rels;
  Format.fprintf ppf "domain = {%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    db.domain
