type t = { schema : Schema.t; map : float Tuple.Map.t }

let make schema rows =
  let k = Schema.arity schema in
  let add map (tuple, p) =
    if Tuple.arity tuple <> k then
      invalid_arg
        (Printf.sprintf "Relation.make: tuple %s has arity %d, expected %d in %s"
           (Tuple.to_string tuple) (Tuple.arity tuple) k schema.Schema.name);
    if Tuple.Map.mem tuple map then
      invalid_arg
        (Printf.sprintf "Relation.make: duplicate tuple %s in %s" (Tuple.to_string tuple)
           schema.Schema.name);
    Tuple.Map.add tuple p map
  in
  { schema; map = List.fold_left add Tuple.Map.empty rows }

let of_list name rows =
  match rows with
  | [] -> invalid_arg "Relation.of_list: empty row list (arity unknown); use make"
  | (t, _) :: _ -> make (Schema.of_arity name (Tuple.arity t)) rows

let deterministic name tuples = of_list name (List.map (fun t -> (t, 1.0)) tuples)
let schema r = r.schema
let name r = r.schema.Schema.name
let arity r = Schema.arity r.schema
let prob r t = match Tuple.Map.find_opt t r.map with Some p -> p | None -> 0.0
let mem r t = Tuple.Map.mem t r.map
let cardinal r = Tuple.Map.cardinal r.map
let tuples r = Tuple.Map.fold (fun t _ acc -> t :: acc) r.map [] |> List.rev
let rows r = Tuple.Map.bindings r.map
let fold f r init = Tuple.Map.fold f r.map init
let map_probs f r = { r with map = Tuple.Map.mapi f r.map }
let is_standard r = Tuple.Map.for_all (fun _ p -> p >= 0.0 && p <= 1.0) r.map

let values r =
  let add acc t = List.fold_left (fun acc v -> v :: acc) acc t in
  Tuple.Map.fold (fun t _ acc -> add acc t) r.map []
  |> List.sort_uniq Value.compare

let pp ppf r =
  Format.fprintf ppf "@[<v2>%a:" Schema.pp r.schema;
  Tuple.Map.iter (fun t p -> Format.fprintf ppf "@ %a : %g" Tuple.pp t p) r.map;
  Format.fprintf ppf "@]"
