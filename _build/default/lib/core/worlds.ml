let max_support = 24

exception Too_large of int

let fold f init db =
  let support = Tid.support db in
  let m = List.length support in
  if m > max_support then raise (Too_large m);
  (* Walk the binary tree of include/exclude decisions, accumulating the
     world and its probability product (Eq. (3)). *)
  let rec go support world p acc =
    match support with
    | [] -> f world p acc
    | (r, t, pt) :: rest ->
        let acc =
          if pt = 0.0 then acc else go rest (World.add (r, t) world) (p *. pt) acc
        in
        if pt = 1.0 then acc else go rest world (p *. (1.0 -. pt)) acc
  in
  go support World.empty 1.0 init

let probability db sat =
  fold (fun w p acc -> if sat w then acc +. p else acc) 0.0 db

let expectation db stat = fold (fun w p acc -> acc +. (p *. stat w)) 0.0 db

let count db =
  let m = Tid.support_size db in
  if m >= 62 then max_int else 1 lsl m
