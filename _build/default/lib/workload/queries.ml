type expected = Ptime | Sharp_p_hard | Ptime_beyond_rules

type entry = {
  name : string;
  text : string;
  query : Probdb_logic.Fo.t;
  expected : expected;
  about : string;
}

let entry name text expected about =
  { name; text; query = Probdb_logic.Parser.parse_sentence text; expected; about }

let q_hier =
  entry "q_hier" "exists x y. R(x) && S(x,y)" Ptime
    "Hierarchical self-join-free CQ (Thm. 4.3, PTIME side); also the plan \
     example of Sec. 6."

let h0 =
  entry "h0" "exists x y. R(x) && S(x,y) && T(y)" Sharp_p_hard
    "The non-hierarchical CQ; dual of Thm. 2.2's H0. #P-hard by reduction \
     from PP2CNF counting."

let h0_forall =
  entry "h0_forall" "forall x y. R(x) || S(x,y) || T(y)" Sharp_p_hard
    "H0 exactly as in Thm. 2.2."

let example_2_1 =
  entry "example_2_1" "forall x y. S(x,y) => R(x)" Ptime
    "The inclusion constraint of Example 2.1 / Fig. 1; its closed-form \
     probability is derived in the paper."

let q_j =
  entry "q_j"
    "exists x y u v. R(x) && S(x,y) && T(u) && S(u,v)" Ptime
    "Q_J of Sec. 5: the basic lifted rules fail, inclusion-exclusion \
     succeeds."

let h1 =
  entry "h1"
    "(exists x y. R(x) && S(x,y)) || (exists u v. S(u,v) && T(v))" Sharp_p_hard
    "h_1, the smallest #P-hard UCQ (both disjuncts are safe, the union is \
     not)."

let h2 =
  entry "h2"
    "(exists x y. R(x) && S1(x,y)) || (exists x y. S1(x,y) && S2(x,y)) || \
     (exists x y. S2(x,y) && T(y))"
    Sharp_p_hard "h_2 of the hard h_k family."

let h3 =
  entry "h3"
    "(exists x y. R(x) && S1(x,y)) || (exists x y. S1(x,y) && S2(x,y)) || \
     (exists x y. S2(x,y) && S3(x,y)) || (exists x y. S3(x,y) && T(y))"
    Sharp_p_hard "h_3 of the hard h_k family (used by Thm. 7.1(ii))."

let q_w =
  entry "q_w"
    "((exists x y. R(x) && S1(x,y)) || (exists x y. S2(x,y) && S3(x,y))) && \
     ((exists x y. S1(x,y) && S2(x,y)) || (exists x y. S3(x,y) && T(y))) && \
     ((exists x y. S2(x,y) && S3(x,y)) || (exists x y. S3(x,y) && T(y)))"
    Ptime
    "A safe query in the style of Q_W (Dalvi-Suciu): its \
     inclusion-exclusion expansion contains #P-hard h_3-shaped terms that \
     cancel; without the cancellation step lifted inference gets stuck \
     (Sec. 5's AB v BC v CD discussion)."

let self_join_hard =
  entry "self_join_hard" "exists x y z. R(x,y) && R(y,z)" Sharp_p_hard
    "Hierarchical but with a self-join: the Thm. 4.3 criterion does not \
     apply, and the query is #P-hard (Sec. 4)."

let self_join_symmetric =
  entry "self_join_symmetric" "exists x y. R(x,y) && R(y,x)" Ptime_beyond_rules
    "In PTIME (pairs {a,b} are independent) but requires the 'ranking' \
     rewriting the paper mentions omitting; our rule set rejects it and the \
     engine falls back to grounded inference."

let all =
  [
    q_hier; h0; h0_forall; example_2_1; q_j; h1; h2; h3; q_w; self_join_hard;
    self_join_symmetric;
  ]

let find name = List.find (fun e -> String.equal e.name name) all

let hierarchical_chain k =
  let open Probdb_logic.Fo in
  let ys = List.init k (fun i -> Printf.sprintf "y%d" (i + 1)) in
  let atoms =
    rel "R" [ "x" ]
    :: List.mapi (fun i y -> rel (Printf.sprintf "S%d" (i + 1)) [ "x"; y ]) ys
  in
  exists ("x" :: ys) (conj atoms)
