(** The query zoo: the named queries the paper's narrative revolves around.

    Every entry records the concrete syntax, the parsed sentence, and what
    the literature says about its data complexity, so tests and benchmarks
    can assert the expected behaviour. *)

type expected =
  | Ptime  (** PQE(Q) in polynomial time, and the lifted rules find it *)
  | Sharp_p_hard  (** #P-hard *)
  | Ptime_beyond_rules
      (** in PTIME, but outside this implementation's rule fragment
          (needs shattering/ranking); grounded methods still apply *)

type entry = {
  name : string;
  text : string;  (** concrete syntax, parseable by [Probdb_logic.Parser] *)
  query : Probdb_logic.Fo.t;
  expected : expected;
  about : string;  (** where in the paper it appears and why it matters *)
}

val all : entry list

val find : string -> entry
(** Raises [Not_found]. *)

val q_hier : entry
(** [∃x∃y R(x)∧S(x,y)] — the hierarchical poster child (Thm. 4.3). *)

val h0 : entry
(** [∃x∃y R(x)∧S(x,y)∧T(y)] — the #P-hard query of Thm. 2.2 (dual form). *)

val h0_forall : entry
(** [∀x∀y R(x)∨S(x,y)∨T(y)] — Thm. 2.2 as stated. *)

val example_2_1 : entry
(** [∀x∀y (S(x,y) ⇒ R(x))] — the inclusion constraint of Example 2.1. *)

val q_j : entry
(** [Q_J] of Sec. 5 — liftable only with inclusion–exclusion. *)

val h1 : entry
(** [R(x)S(x,y) ∨ S(u,v)T(v)] — the smallest hard UCQ. *)

val h2 : entry
val h3 : entry
(** Longer members of the hard [h_k] family (used by Thm. 7.1(ii)). *)

val q_w : entry
(** A safe conjunction of clauses over the [h_3] components whose
    inclusion–exclusion expansion contains the #P-hard [h_3]-style terms
    with coefficient 0 — evaluating it requires the cancellation step
    (the [AB ∨ BC ∨ CD] discussion of Sec. 5). *)

val self_join_hard : entry
(** [∃x∃y∃z R(x,y)∧R(y,z)] — hierarchical yet #P-hard (self-joins break
    Thm. 4.3's criterion). *)

val self_join_symmetric : entry
(** [∃x∃y R(x,y)∧R(y,x)] — in PTIME but needs the "ranking" refinement the
    paper mentions omitting; our rules reject it. *)

val hierarchical_chain : int -> Probdb_logic.Fo.t
(** [∃x∃y1...∃yk R(x)∧S1(x,y1)∧...∧Sk(x,yk)] — a hierarchical family of
    growing width, all safe, used for the linear-OBDD experiment. *)
