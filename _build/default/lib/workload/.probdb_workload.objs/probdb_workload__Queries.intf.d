lib/workload/queries.mli: Probdb_logic
