lib/workload/queries.ml: List Printf Probdb_logic String
