lib/workload/gen.ml: Array Float Fun List Probdb_core Random
