lib/workload/gen.mli: Probdb_core
