(** Seeded synthetic TID generators.

    The paper evaluates no datasets of its own; these generators produce
    the database families its claims are about: complete bipartite-shaped
    TIDs for H0-style queries, random sparse TIDs for correctness sweeps,
    Zipf-skewed probabilities for realism. All generation is deterministic
    given the seed. *)

type rel_spec = {
  name : string;
  arity : int;
  density : float;  (** fraction of the [domain^arity] possible tuples listed *)
}

val spec : ?density:float -> string -> int -> rel_spec
(** Density defaults to 0.5. *)

val random_tid :
  ?seed:int -> ?prob_range:float * float -> domain_size:int -> rel_spec list ->
  Probdb_core.Tid.t
(** Each possible tuple is listed with probability [density]; listed tuples
    get a uniform probability from [prob_range] (default [(0.05, 0.95)]).
    The domain is declared as [0 .. domain_size-1] even when some value ends
    up in no tuple. *)

val complete_tid :
  ?prob:float -> domain_size:int -> (string * int) list -> Probdb_core.Tid.t
(** Every possible tuple listed, all with probability [prob] (default 0.5) —
    a symmetric database in the sense of Sec. 8. *)

val h0_db : ?seed:int -> n:int -> unit -> Probdb_core.Tid.t
(** The complete bipartite family for H0: unary [R], [T] over a domain of
    size [n] and the full binary [S], with random probabilities — the
    workload of the dichotomy and circuit-size experiments. *)

val zipf_probs : ?s:float -> int -> float list
(** [zipf_probs k] are [k] probabilities proportional to the Zipf(s)
    distribution, rescaled into (0, 1); default exponent 1.0. *)

val with_zipf_probs : ?seed:int -> ?s:float -> Probdb_core.Tid.t -> Probdb_core.Tid.t
(** Reassigns tuple probabilities by a Zipf-skewed permutation. *)

val all_tuples : int -> Probdb_core.Value.t list -> Probdb_core.Tuple.t list
(** All tuples of the given arity over the domain, in lexicographic order. *)
