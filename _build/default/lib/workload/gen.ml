module Core = Probdb_core

type rel_spec = { name : string; arity : int; density : float }

let spec ?(density = 0.5) name arity = { name; arity; density }

let rec all_tuples arity domain =
  if arity = 0 then [ [] ]
  else
    let rest = all_tuples (arity - 1) domain in
    List.concat_map (fun v -> List.map (fun t -> v :: t) rest) domain

let random_tid ?(seed = 42) ?(prob_range = (0.05, 0.95)) ~domain_size specs =
  let rng = Random.State.make [| seed |] in
  let lo, hi = prob_range in
  let domain = List.init domain_size Core.Value.int in
  let make spec =
    let rows =
      all_tuples spec.arity domain
      |> List.filter_map (fun t ->
             if Random.State.float rng 1.0 < spec.density then
               Some (t, lo +. Random.State.float rng (hi -. lo))
             else None)
    in
    Core.Relation.make (Core.Schema.of_arity spec.name spec.arity) rows
  in
  Core.Tid.make ~domain (List.map make specs)

let complete_tid ?(prob = 0.5) ~domain_size rels =
  let domain = List.init domain_size Core.Value.int in
  let make (name, arity) =
    let rows = List.map (fun t -> (t, prob)) (all_tuples arity domain) in
    Core.Relation.make (Core.Schema.of_arity name arity) rows
  in
  Core.Tid.make ~domain (List.map make rels)

let h0_db ?(seed = 42) ~n () =
  random_tid ~seed ~domain_size:n
    [ spec ~density:1.0 "R" 1; spec ~density:1.0 "S" 2; spec ~density:1.0 "T" 1 ]

let zipf_probs ?(s = 1.0) k =
  let raw = List.init k (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let top = List.fold_left Float.max 0.0 raw in
  (* rescale into (0, 1): largest weight maps to 0.9 *)
  List.map (fun w -> 0.9 *. w /. top) raw

let with_zipf_probs ?(seed = 42) ?s db =
  let rng = Random.State.make [| seed |] in
  let reassign rel =
    let n = Core.Relation.cardinal rel in
    let probs = Array.of_list (zipf_probs ?s (max n 1)) in
    (* shuffle which tuple gets which rank *)
    let perm = Array.init n Fun.id in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- tmp
    done;
    let i = ref 0 in
    Core.Relation.map_probs
      (fun _ _ ->
        let p = probs.(perm.(!i)) in
        incr i;
        p)
      rel
  in
  Core.Tid.make ~domain:(Core.Tid.domain db) (List.map reassign (Core.Tid.relations db))
