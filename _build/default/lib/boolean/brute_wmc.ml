let max_vars = 24

exception Too_large of int

let enumerate f combine init =
  let vars = Array.of_list (Formula.vars f) in
  let n = Array.length vars in
  if n > max_vars then raise (Too_large n);
  let assignment = Hashtbl.create n in
  let lookup x = Hashtbl.find assignment x in
  let rec go i acc =
    if i = n then combine (Formula.eval lookup f) lookup vars acc
    else begin
      Hashtbl.replace assignment vars.(i) true;
      let acc = go (i + 1) acc in
      Hashtbl.replace assignment vars.(i) false;
      go (i + 1) acc
    end
  in
  go 0 init

let count_models f =
  enumerate f (fun sat _ _ acc -> if sat then acc + 1 else acc) 0

let probability p f =
  enumerate f
    (fun sat lookup vars acc ->
      if not sat then acc
      else
        let weight =
          Array.fold_left
            (fun w x -> w *. if lookup x then p x else 1.0 -. p x)
            1.0 vars
        in
        acc +. weight)
    0.0

let weight w f =
  enumerate f
    (fun sat lookup vars acc ->
      if not sat then acc
      else
        let wt =
          Array.fold_left (fun acc x -> if lookup x then acc *. w x else acc) 1.0 vars
        in
        acc +. wt)
    0.0
