(** Pools of named Boolean variables.

    Model counting works on integer variable ids; lineage construction needs
    to associate each id with the fact (e.g. ["S(a1,b2)"]) it stands for, and
    with that fact's marginal probability. A pool is the mutable bijection
    between labels and ids, plus the probability table. *)

type t

val create : unit -> t

val intern : t -> ?prob:float -> string -> int
(** Returns the id of the label, allocating a fresh one on first use. The
    probability defaults to 0.5 and is overwritten when [?prob] is given. *)

val fresh : t -> ?prob:float -> string -> int
(** Always allocates a new id; the label is suffixed to stay unique. *)

val label : t -> int -> string
(** Raises [Not_found] on unknown ids. *)

val find : t -> string -> int option

val prob : t -> int -> float
(** Marginal probability of the variable (default 0.5). *)

val set_prob : t -> int -> float -> unit

val size : t -> int
(** Number of allocated variables; ids are [0 .. size-1]. *)

val probs : t -> int -> float
(** Same as {!prob}; usable directly as the weight function of WMC. *)
