lib/boolean/var_pool.mli:
