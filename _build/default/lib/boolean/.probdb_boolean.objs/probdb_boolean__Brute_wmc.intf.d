lib/boolean/brute_wmc.mli: Formula
