lib/boolean/formula.mli: Format
