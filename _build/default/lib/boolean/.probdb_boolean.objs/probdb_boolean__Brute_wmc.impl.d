lib/boolean/brute_wmc.ml: Array Formula Hashtbl
