lib/boolean/formula.ml: Buffer Format Hashtbl Int List Set
