lib/boolean/var_pool.ml: Array Hashtbl Printf
