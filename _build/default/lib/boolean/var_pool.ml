(* OCaml 5.1 has no Dynarray in the stdlib (it arrives in 5.2); emulate the
   tiny part we need with an array-backed growable buffer. *)
module Buf = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }

  let push buf x =
    if buf.len = Array.length buf.data then begin
      let data = Array.make (2 * buf.len) buf.dummy in
      Array.blit buf.data 0 data 0 buf.len;
      buf.data <- data
    end;
    buf.data.(buf.len) <- x;
    buf.len <- buf.len + 1

  let get buf i =
    if i < 0 || i >= buf.len then raise Not_found;
    buf.data.(i)

  let set buf i x =
    if i < 0 || i >= buf.len then raise Not_found;
    buf.data.(i) <- x

  let length buf = buf.len
end

type t = {
  by_label : (string, int) Hashtbl.t;
  labels : string Buf.t;
  prob_tbl : float Buf.t;
}

let create () =
  { by_label = Hashtbl.create 64; labels = Buf.create ""; prob_tbl = Buf.create 0.5 }

let alloc pool ?(prob = 0.5) lbl =
  let id = Buf.length pool.labels in
  Hashtbl.replace pool.by_label lbl id;
  Buf.push pool.labels lbl;
  Buf.push pool.prob_tbl prob;
  id

let intern pool ?prob lbl =
  match Hashtbl.find_opt pool.by_label lbl with
  | Some id ->
      (match prob with Some p -> Buf.set pool.prob_tbl id p | None -> ());
      id
  | None -> alloc pool ?prob lbl

let fresh pool ?prob lbl =
  let rec distinct candidate i =
    if Hashtbl.mem pool.by_label candidate then
      distinct (Printf.sprintf "%s#%d" lbl i) (i + 1)
    else candidate
  in
  alloc pool ?prob (distinct lbl 1)

let label pool id = Buf.get pool.labels id
let find pool lbl = Hashtbl.find_opt pool.by_label lbl
let prob pool id = Buf.get pool.prob_tbl id
let set_prob pool id p = Buf.set pool.prob_tbl id p
let size pool = Buf.length pool.labels
let probs = prob
