(** Brute-force (weighted) model counting by assignment enumeration.

    The reference implementation of the model-counting problem of Sec. 7:
    exponential in the number of variables, used as the testing oracle for
    DPLL and knowledge compilation. *)

val max_vars : int
(** Enumeration refuses formulas with more variables than this (24). *)

exception Too_large of int

val count_models : Formula.t -> int
(** Number of satisfying assignments over the variables occurring in the
    formula (Valiant's #F). *)

val probability : (int -> float) -> Formula.t -> float
(** [probability p f] is the probability that [f] is true when each variable
    [x] is independently true with probability [p x] — weighted model
    counting in its probability formulation (Appendix of the paper).
    Non-standard "probabilities" outside [0,1] are accepted. *)

val weight : (int -> float) -> Formula.t -> float
(** [weight w f] is the weighted model count [Σ_{θ ⊨ f} Π_{θ(x)=1} w x]
    (Eq. (16) of the paper); related to {!probability} by dividing by
    [Z = Π (1 + w x)]. *)
