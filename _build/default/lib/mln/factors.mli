(** Propositional Markov networks: weights, factors, and the two
    independence-plus-constraint encodings of the Appendix.

    This is the propositional core that Sec. 3 lifts to relations: variables
    carry weights, factors [(w, G)] multiply a world's weight by [w] when
    the Boolean formula [G] holds, and the distribution is weight/Z. The
    Appendix shows two ways to replace a factor by a fresh independent
    variable [X] and a hard constraint [Γ]:

    - [weight X = w] and [Γ = (X ⇔ G)];
    - [weight X = 1/(w-1)] and [Γ = (X ∨ G)] (negative weight when
      [w < 1] — a non-standard probability, yet all conditional
      probabilities remain standard). *)

type factor = { weight : float; formula : Probdb_boolean.Formula.t }

type t = {
  var_weights : (int * float) list;
      (** weight of each variable being true; missing variables weigh 1 *)
  factors : factor list;
}

val make : ?var_weights:(int * float) list -> factor list -> t

val vars : t -> int list
(** All variables of the network (from weights and factor formulas). *)

val world_weight : t -> (int -> bool) -> float
(** [Π_{θ(X)=1} w_X × Π_{(w,G): θ ⊨ G} w] — the [weight'] of the
    Appendix. *)

val partition_function : t -> float
(** [Z'], by enumeration over all assignments (≤ 20 variables). *)

val probability : t -> Probdb_boolean.Formula.t -> float
(** [p'(F) = weight'(F) / Z']. *)

type encoding = Or_encoding | Iff_encoding

type translation = {
  probs : (int * float) list;  (** per-variable independent probabilities *)
  gamma : Probdb_boolean.Formula.t;  (** the hard constraint *)
  fresh : (int * int) list;  (** factor index → fresh variable *)
}

val translate : ?encoding:encoding -> ?avoid:int list -> t -> translation
(** Conversion to an independent model conditioned on [gamma]: for every
    Boolean query [F] over the original variables,
    [probability mn F = P(F | gamma)] under the independent distribution
    [probs]. Default [Iff_encoding]. Fresh variables are chosen above every
    variable of the network and of [avoid] (pass the query's variables). *)

val conditional_probability :
  (int -> float) -> given:Probdb_boolean.Formula.t -> Probdb_boolean.Formula.t -> float
(** [P(F | Γ)] under an independent distribution (enumeration). *)

val probability_via_translation :
  ?encoding:encoding -> t -> Probdb_boolean.Formula.t -> float
