(** Markov Logic Networks, and their reduction to TIDs with constraints.

    Sec. 3 of the paper: an MLN is a set of soft constraints [(w, Δ)]; its
    semantics is the Markov network whose factors are the groundings of the
    constraints — a world's weight is [Π w] over satisfied groundings, and
    its probability is the weight divided by the partition function [Z].

    Proposition 3.1: the same distribution arises from a tuple-independent
    database conditioned on a hard constraint [Γ]. Two encodings are
    implemented, following the Appendix:

    - {e Or}: a fresh relation [A_i] per constraint with tuple {e weight}
      [1/(w_i - 1)] (i.e. probability [1/w_i]; non-standard when [w_i < 1])
      and [Γ_i = ∀x̄ (A_i(x̄) ∨ Δ_i(x̄))] — the encoding of the
      Manager/HighlyCompensated example;
    - {e Iff}: tuple weight [w_i] (probability [w_i/(1+w_i)]) and
      [Γ_i = ∀x̄ (A_i(x̄) ⇔ Δ_i(x̄))].

    Then [p_MLN(Q) = p_D(Q | Γ) = p_D(Q ∧ Γ) / p_D(Γ)] for every query [Q]
    over the original vocabulary.

    All exact computations here enumerate the [2^|Tup|] possible worlds and
    are meant for small domains; they are the semantics oracle, not the
    inference engine. *)

type soft = {
  weight : float;  (** must be positive; [1.0] means the constraint is vacuous *)
  delta : Probdb_logic.Fo.t;  (** free variables are the grounding variables *)
}

type t = soft list

val soft : float -> Probdb_logic.Fo.t -> soft

val vocabulary : t -> (string * int) list
(** Relation symbols of the original (non-auxiliary) vocabulary. *)

val groundings :
  domain:Probdb_core.Value.t list -> soft -> (float * Probdb_logic.Fo.t) list
(** All groundings of one soft constraint: the free variables substituted by
    domain constants in every possible way (the factors of the Markov
    network). *)

val world_weight : domain:Probdb_core.Value.t list -> t -> Probdb_core.World.t -> float
(** [Π_{(w,F) ⊨ W} w]. *)

exception Too_large of int

val fold_worlds :
  domain:Probdb_core.Value.t list -> (string * int) list ->
  (Probdb_core.World.t -> 'a -> 'a) -> 'a -> 'a
(** Folds over all subsets of the possible tuples of the given vocabulary;
    raises {!Too_large} beyond 2^22 worlds. *)

val partition_function : domain:Probdb_core.Value.t list -> t -> float
(** [Z = Σ_W weight(W)]. *)

val probability : domain:Probdb_core.Value.t list -> t -> Probdb_logic.Fo.t -> float
(** [p_MLN(Q)] by direct enumeration. *)

(** {1 The Prop. 3.1 translation} *)

type encoding = Or_encoding | Iff_encoding

type translation = {
  db : Probdb_core.Tid.t;
      (** original relations complete at probability 1/2, one auxiliary
          relation per constraint *)
  gamma : Probdb_logic.Fo.t;  (** the hard constraint [Γ] *)
  aux : string list;  (** names of the auxiliary relations *)
}

val translate :
  ?encoding:encoding -> domain:Probdb_core.Value.t list -> t -> translation
(** Default encoding [Iff_encoding] (standard probabilities for every
    weight). [Or_encoding] requires every weight ≠ 1 and produces
    non-standard probabilities for weights < 1. *)

val conditional_probability :
  Probdb_core.Tid.t -> given:Probdb_logic.Fo.t -> Probdb_logic.Fo.t -> float
(** [p_D(Q | Γ)] by world enumeration. *)

val probability_via_tid :
  ?encoding:encoding -> domain:Probdb_core.Value.t list -> t ->
  Probdb_logic.Fo.t -> float
(** The right-hand side of Prop. 3.1: translate, then condition. *)

val manager_example : t
(** The running example (5) of the paper: weight 3.9 on
    [Manager(m,e) ⇒ HighlyCompensated(m)]. *)
