lib/mln/factors.ml: Array Hashtbl Int List Option Probdb_boolean
