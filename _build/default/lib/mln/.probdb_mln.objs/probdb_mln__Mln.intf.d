lib/mln/mln.mli: Probdb_core Probdb_logic
