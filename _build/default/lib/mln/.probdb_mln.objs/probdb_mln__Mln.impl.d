lib/mln/mln.ml: List Printf Probdb_core Probdb_logic String
