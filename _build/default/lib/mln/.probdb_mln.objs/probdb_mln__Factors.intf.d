lib/mln/factors.mli: Probdb_boolean
