module Core = Probdb_core
module Fo = Probdb_logic.Fo
module Semantics = Probdb_logic.Semantics

type soft = { weight : float; delta : Fo.t }

type t = soft list

let soft weight delta =
  if weight <= 0.0 then invalid_arg "Mln.soft: weight must be positive";
  { weight; delta }

let vocabulary mln =
  List.concat_map (fun s -> Fo.relations s.delta) mln
  |> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b)

let rec assignments domain = function
  | [] -> [ [] ]
  | x :: rest ->
      let tails = assignments domain rest in
      List.concat_map (fun v -> List.map (fun tl -> (x, v) :: tl) tails) domain

let groundings ~domain s =
  let free = Fo.free_vars s.delta in
  assignments domain free
  |> List.map (fun env ->
         let ground =
           List.fold_left (fun f (x, v) -> Fo.subst_const x v f) s.delta env
         in
         (s.weight, ground))

let world_weight ~domain mln world =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc (w, f) -> if Semantics.holds ~domain world f then acc *. w else acc)
        acc (groundings ~domain s))
    1.0 mln

exception Too_large of int

let rec all_tuples arity domain =
  if arity = 0 then [ [] ]
  else
    let rest = all_tuples (arity - 1) domain in
    List.concat_map (fun v -> List.map (fun t -> v :: t) rest) domain

let possible_tuples ~domain vocab =
  List.concat_map
    (fun (name, arity) -> List.map (fun t -> (name, t)) (all_tuples arity domain))
    vocab

let fold_worlds ~domain vocab f init =
  let tup = possible_tuples ~domain vocab in
  let n = List.length tup in
  if n > 22 then raise (Too_large n);
  let rec go facts world acc =
    match facts with
    | [] -> f world acc
    | fact :: rest -> go rest (Core.World.add fact world) (go rest world acc)
  in
  go tup Core.World.empty init

let partition_function ~domain mln =
  fold_worlds ~domain (vocabulary mln)
    (fun w acc -> acc +. world_weight ~domain mln w)
    0.0

let probability ~domain mln q =
  let num, den =
    fold_worlds ~domain (vocabulary mln)
      (fun w (num, den) ->
        let wt = world_weight ~domain mln w in
        let num = if Semantics.holds ~domain w q then num +. wt else num in
        (num, den +. wt))
      (0.0, 0.0)
  in
  num /. den

(* ---------- Prop. 3.1 ---------- *)

type encoding = Or_encoding | Iff_encoding

type translation = { db : Core.Tid.t; gamma : Fo.t; aux : string list }

let fresh_aux_name vocab i =
  let rec pick candidate =
    if List.mem_assoc candidate vocab then pick (candidate ^ "X") else candidate
  in
  pick (Printf.sprintf "A%d" i)

let complete_relation name arity domain prob =
  let rows = List.map (fun t -> (t, prob)) (all_tuples arity domain) in
  Core.Relation.make (Core.Schema.of_arity name arity) rows

let translate ?(encoding = Iff_encoding) ~domain mln =
  let vocab = vocabulary mln in
  let original =
    List.map (fun (name, arity) -> complete_relation name arity domain 0.5) vocab
  in
  let per_constraint i s =
    let free = Fo.free_vars s.delta in
    let name = fresh_aux_name vocab i in
    let aux_prob =
      match encoding with
      | Iff_encoding -> s.weight /. (1.0 +. s.weight)
      | Or_encoding ->
          if s.weight = 1.0 then
            invalid_arg "Mln.translate: Or encoding needs weight <> 1";
          (* tuple *weight* 1/(w-1), hence probability 1/w (the Appendix's
             second approach; non-standard when w < 1) *)
          1.0 /. s.weight
    in
    let rel = complete_relation name (List.length free) domain aux_prob in
    let aux_atom = Fo.Atom { Fo.rel = name; args = List.map (fun v -> Fo.Var v) free } in
    let body =
      match encoding with
      | Or_encoding -> Fo.Or (aux_atom, s.delta)
      | Iff_encoding -> Fo.And (Fo.Implies (aux_atom, s.delta), Fo.Implies (s.delta, aux_atom))
    in
    (rel, name, Fo.forall free body)
  in
  let triples = List.mapi per_constraint mln in
  let db = Core.Tid.make ~domain (original @ List.map (fun (r, _, _) -> r) triples) in
  let gamma = Fo.conj (List.map (fun (_, _, g) -> g) triples) in
  { db; gamma; aux = List.map (fun (_, n, _) -> n) triples }

let conditional_probability db ~given q =
  let sat = Probdb_logic.Brute_force.probability db (Fo.And (q, given)) in
  let norm = Probdb_logic.Brute_force.probability db given in
  sat /. norm

let probability_via_tid ?encoding ~domain mln q =
  let { db; gamma; _ } = translate ?encoding ~domain mln in
  conditional_probability db ~given:gamma q

let manager_example =
  [
    soft 3.9
      (Probdb_logic.Parser.parse ~free:[ "m"; "e" ]
         "Manager(m,e) => HighlyCompensated(m)");
  ]
