module F = Probdb_boolean.Formula

type factor = { weight : float; formula : F.t }

type t = { var_weights : (int * float) list; factors : factor list }

let make ?(var_weights = []) factors = { var_weights; factors }

let vars mn =
  List.map fst mn.var_weights @ List.concat_map (fun f -> F.vars f.formula) mn.factors
  |> List.sort_uniq Int.compare

let var_weight mn x = Option.value ~default:1.0 (List.assoc_opt x mn.var_weights)

let world_weight mn assignment =
  let base =
    List.fold_left
      (fun acc x -> if assignment x then acc *. var_weight mn x else acc)
      1.0 (vars mn)
  in
  List.fold_left
    (fun acc f -> if F.eval assignment f.formula then acc *. f.weight else acc)
    base mn.factors

let enumerate vs f init =
  let vs = Array.of_list vs in
  let n = Array.length vs in
  if n > 20 then invalid_arg "Factors: too many variables to enumerate";
  let tbl = Hashtbl.create n in
  let lookup x = match Hashtbl.find_opt tbl x with Some b -> b | None -> false in
  let rec go i acc =
    if i = n then f lookup acc
    else begin
      Hashtbl.replace tbl vs.(i) true;
      let acc = go (i + 1) acc in
      Hashtbl.replace tbl vs.(i) false;
      go (i + 1) acc
    end
  in
  go 0 init

let partition_function mn =
  enumerate (vars mn) (fun a acc -> acc +. world_weight mn a) 0.0

let probability mn f =
  let num, den =
    enumerate
      (List.sort_uniq Int.compare (vars mn @ F.vars f))
      (fun a (num, den) ->
        let w = world_weight mn a in
        ((if F.eval a f then num +. w else num), den +. w))
      (0.0, 0.0)
  in
  num /. den

type encoding = Or_encoding | Iff_encoding

type translation = {
  probs : (int * float) list;
  gamma : F.t;
  fresh : (int * int) list;
}

let translate ?(encoding = Iff_encoding) ?(avoid = []) mn =
  let original = vars mn in
  let next =
    ref
      (match original @ avoid with
      | [] -> 0
      | used -> 1 + List.fold_left max 0 used)
  in
  let base_probs = List.map (fun x -> (x, var_weight mn x /. (1.0 +. var_weight mn x))) original in
  let per_factor i f =
    let x = !next in
    incr next;
    let weight, gamma =
      match encoding with
      | Iff_encoding -> (f.weight, F.iff (F.var x) f.formula)
      | Or_encoding ->
          if f.weight = 1.0 then invalid_arg "Factors.translate: Or encoding needs weight <> 1";
          (1.0 /. (f.weight -. 1.0), F.disj2 (F.var x) f.formula)
    in
    ((x, weight /. (1.0 +. weight)), (i, x), gamma)
  in
  let converted = List.mapi per_factor mn.factors in
  { probs = base_probs @ List.map (fun (p, _, _) -> p) converted;
    gamma = F.conj (List.map (fun (_, _, g) -> g) converted);
    fresh = List.map (fun (_, m, _) -> m) converted }

let conditional_probability prob ~given f =
  let vs = List.sort_uniq Int.compare (F.vars f @ F.vars given) in
  let num, den =
    enumerate vs
      (fun a (num, den) ->
        if F.eval a given then begin
          let w =
            List.fold_left
              (fun acc x -> acc *. if a x then prob x else 1.0 -. prob x)
              1.0 vs
          in
          ((if F.eval a f then num +. w else num), den +. w)
        end
        else (num, den))
      (0.0, 0.0)
  in
  num /. den

let probability_via_translation ?encoding mn f =
  let { probs; gamma; _ } = translate ?encoding ~avoid:(F.vars f) mn in
  let prob x = Option.value ~default:0.5 (List.assoc_opt x probs) in
  conditional_probability prob ~given:gamma f
