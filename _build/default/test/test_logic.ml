open Probdb_logic
module Core = Probdb_core

let parse = Parser.parse
let parse_s = Parser.parse_sentence

let test_parser_basics () =
  let q = parse_s "exists x y. R(x) && S(x,y)" in
  Alcotest.(check string) "roundtrip" "exists x y. R(x) && S(x,y)" (Fo.to_string q);
  let q2 = parse_s "forall x y. S(x,y) => R(x)" in
  Alcotest.(check bool) "sentence" true (Fo.is_sentence q2);
  (* unbound identifiers are constants *)
  let q3 = parse "R(alice)" in
  Alcotest.(check int) "constant arg" 1 (List.length (Fo.constants q3));
  let q4 = parse ~free:[ "x" ] "R(x)" in
  Alcotest.(check (list string)) "declared free var" [ "x" ] (Fo.free_vars q4)

let test_parser_precedence () =
  let q = parse_s "exists x. R(x) && S(x,x) || T(x) && R(x)" in
  (match q with
  | Fo.Exists (_, Fo.Or (Fo.And _, Fo.And _)) -> ()
  | _ -> Alcotest.failf "precedence wrong: %s" (Fo.to_string q));
  let q2 = parse_s "exists x. R(x) => S(x,x) => T(x)" in
  match q2 with
  | Fo.Exists (_, Fo.Implies (_, Fo.Implies _)) -> ()
  | _ -> Alcotest.failf "implies associativity wrong: %s" (Fo.to_string q2)

let test_parser_errors () =
  let expect_error s =
    match parse_s s with
    | exception Parser.Error _ -> ()
    | q -> Alcotest.failf "expected parse error for %S, got %s" s (Fo.to_string q)
  in
  expect_error "R(x";
  expect_error "exists . R(x)";
  expect_error "R(x) &&";
  expect_error "exists x. R(x) S(x)";
  (* unterminated quote *)
  expect_error "R('a)"

let test_free_vars_subst () =
  let q = parse ~free:[ "x" ] "exists y. S(x,y) && R(x)" in
  Alcotest.(check (list string)) "free" [ "x" ] (Fo.free_vars q);
  let q' = Fo.subst_const "x" (Core.Value.str "a1") q in
  Alcotest.(check (list string)) "closed after subst" [] (Fo.free_vars q');
  (* substitution does not cross shadowing quantifiers *)
  let shadow = parse ~free:[ "y" ] "R(y) && (exists y. S(y,y))" in
  let shadow' = Fo.subst_const "y" (Core.Value.int 1) shadow in
  Alcotest.(check (list string)) "shadowed bound var intact" [] (Fo.free_vars shadow');
  Alcotest.(check bool) "inner exists kept" true
    (String.length (Fo.to_string shadow') > 0
    && (match shadow' with Fo.And (_, Fo.Exists _) -> true | _ -> false))

let test_nnf_and_prenex () =
  let q = parse_s "forall x y. S(x,y) => R(x)" in
  let n = Fo.nnf q in
  Alcotest.(check bool) "nnf has no implies" true
    (match n with Fo.Forall (_, Fo.Forall (_, Fo.Or (Fo.Not (Fo.Atom _), Fo.Atom _))) -> true | _ -> false);
  let prefix, matrix = Fo.prenex (parse_s "(exists x. R(x)) && (exists y. T(y))") in
  Alcotest.(check int) "two quantifiers" 2 (List.length prefix);
  Alcotest.(check bool) "matrix qf" true (match matrix with Fo.And _ -> true | _ -> false);
  Alcotest.(check bool) "prefix class" true (Fo.prefix_class q = `All_forall)

let test_polarity_unate () =
  (* the paper's unate example: both occurrences of R negated *)
  let u = parse_s "forall x. (R(x) => S(x)) && (R(x) => T(x))" in
  Alcotest.(check bool) "unate" true (Fo.is_unate u);
  Alcotest.(check bool) "not monotone" false (Fo.is_monotone u);
  (* the paper's non-unate example: S occurs both positive and negated *)
  let nu = parse_s "forall x. (R(x) => S(x)) && (S(x) => T(x))" in
  Alcotest.(check bool) "not unate" false (Fo.is_unate nu);
  let m = parse_s "exists x y. R(x) && S(x,y)" in
  Alcotest.(check bool) "monotone" true (Fo.is_monotone m)

let test_dual () =
  (* dual of H0-forall is H0-exists (Sec. 2) *)
  let h0 = parse_s "forall x y. R(x) || S(x,y) || T(y)" in
  let d = Fo.dual h0 in
  let expected = parse_s "exists x y. R(x) && S(x,y) && T(y)" in
  Alcotest.(check bool) "dual of H0" true (Fo.equal d expected);
  Alcotest.(check bool) "involution" true (Fo.equal (Fo.dual d) h0)

let test_dual_probability () =
  (* p_D(dual Q) = 1 - p_{D^c}(Q) on a tiny database *)
  let t xs = List.map Core.Value.int xs in
  let r = Core.Relation.of_list "R" [ (t [ 0 ], 0.3); (t [ 1 ], 0.8) ] in
  let s = Core.Relation.of_list "S" [ (t [ 0; 1 ], 0.5) ] in
  let db = Core.Tid.make [ r; s ] in
  let q = parse_s "exists x y. R(x) && S(x,y)" in
  let dual_q = Fo.dual q in
  let dbc = Brute_force.complement_tid db [ ("R", 1); ("S", 2) ] in
  Test_util.check_float "duality identity"
    (Brute_force.probability db dual_q)
    (1.0 -. Brute_force.probability dbc q)

let test_semantics () =
  let t xs = List.map Core.Value.int xs in
  let w = Core.World.of_facts [ ("R", t [ 1 ]); ("S", t [ 1; 2 ]) ] in
  let domain = [ Core.Value.int 1; Core.Value.int 2 ] in
  let holds q = Semantics.holds ~domain w (parse_s q) in
  Alcotest.(check bool) "exists sat" true (holds "exists x y. R(x) && S(x,y)");
  Alcotest.(check bool) "forall unsat" false (holds "forall x. R(x)");
  Alcotest.(check bool) "implication" true (holds "forall x y. S(x,y) => R(x)");
  Alcotest.(check bool) "negation" true (holds "!(forall x. R(x))");
  Alcotest.(check bool) "constants" true
    (Semantics.holds ~domain w (parse "R(1)"))

let test_example_2_1 () =
  (* Example 2.1: the inclusion-constraint sentence on the Fig. 1 TID. *)
  let db = Test_util.fig1_tid () in
  let q = parse_s "forall x y. S(x,y) => R(x)" in
  Test_util.check_float "closed form vs enumeration"
    (Test_util.example_2_1_expected ())
    (Brute_force.probability db q)

let test_answers () =
  let t xs = List.map Core.Value.int xs in
  let r = Core.Relation.of_list "R" [ (t [ 1 ], 0.3); (t [ 2 ], 0.9) ] in
  let s = Core.Relation.of_list "S" [ (t [ 1; 2 ], 0.5); (t [ 2; 2 ], 1.0) ] in
  let db = Core.Tid.make [ r; s ] in
  let q = parse ~free:[ "x" ] "exists y. R(x) && S(x,y)" in
  let answers = Brute_force.answers db ~free:[ "x" ] q in
  Alcotest.(check int) "two answers" 2 (List.length answers);
  let lookup k = List.assoc (t [ k ]) answers in
  Test_util.check_float "answer 1" (0.3 *. 0.5) (lookup 1);
  Test_util.check_float "answer 2" 0.9 (lookup 2)

(* ---------- CQ machinery ---------- *)

let cq_of_string s =
  match Ucq.of_sentence (parse_s s) with
  | [ cq ], Ucq.Direct -> cq
  | _ -> Alcotest.failf "not a single CQ: %s" s

let test_hierarchical () =
  let h = cq_of_string "exists x y. R(x) && S(x,y)" in
  Alcotest.(check bool) "R,S hierarchical" true (Cq.is_hierarchical h);
  let h0 = cq_of_string "exists x y. R(x) && S(x,y) && T(y)" in
  Alcotest.(check bool) "H0 not hierarchical" false (Cq.is_hierarchical h0);
  let sj = cq_of_string "exists x y z. R(x,y) && R(y,z)" in
  Alcotest.(check bool) "self-join query hierarchical" true (Cq.is_hierarchical sj);
  Alcotest.(check bool) "detects self-join" false (Cq.is_self_join_free sj)

let test_dichotomy_classifier () =
  let safe = cq_of_string "exists x y. R(x) && S(x,y)" in
  Alcotest.(check bool) "safe" true (Dichotomy.classify_sjf_cq safe = Dichotomy.Safe);
  let hard = cq_of_string "exists x y. R(x) && S(x,y) && T(y)" in
  Alcotest.(check bool) "hard" true (Dichotomy.classify_sjf_cq hard = Dichotomy.Hard);
  (* works through the forall form too *)
  (match Dichotomy.classify_sentence_sjf (parse_s "forall x y. R(x) || S(x,y) || T(y)") with
  | Some Dichotomy.Hard -> ()
  | _ -> Alcotest.fail "H0-forall should classify as hard");
  let sj = cq_of_string "exists x y z. R(x,y) && R(y,z)" in
  Alcotest.check_raises "self-join rejected"
    (Invalid_argument "Dichotomy.classify_sjf_cq: query has self-joins") (fun () ->
      ignore (Dichotomy.classify_sjf_cq sj))

let test_containment () =
  let c1 = cq_of_string "exists x y. R(x) && S(x,y)" in
  let c2 = cq_of_string "exists x. R(x)" in
  Alcotest.(check bool) "c1 ⊑ c2" true (Cq.contained c1 c2);
  Alcotest.(check bool) "c2 not ⊑ c1" false (Cq.contained c2 c1);
  Alcotest.(check bool) "reflexive" true (Cq.contained c1 c1);
  (* constants block homomorphisms *)
  let g1 = cq_of_string "exists y. S(1,y)" in
  let g2 = cq_of_string "exists x y. S(x,y)" in
  Alcotest.(check bool) "ground ⊑ general" true (Cq.contained g1 g2);
  Alcotest.(check bool) "general not ⊑ ground" false (Cq.contained g2 g1);
  (* complemented symbols are distinct from positive ones *)
  let n1 = Cq.make [ Cq.of_vars ~comp:true "R" [ "x" ] ] in
  let p1 = Cq.make [ Cq.of_vars "R" [ "x" ] ] in
  Alcotest.(check bool) "comp vs pos" false (Cq.contained n1 p1)

let test_minimization () =
  (* R(x) ∧ ∃y S(x,y) ∧ ∃z S(x,z): the second S-atom is redundant *)
  let c = cq_of_string "exists x y z. R(x) && S(x,y) && S(x,z)" in
  let m = Cq.minimize c in
  Alcotest.(check int) "atoms after minimize" 2 (List.length m);
  Alcotest.(check bool) "equivalent to original" true (Cq.equivalent c m);
  (* a core: R(x,y) ∧ R(y,x) is already minimal *)
  let core = cq_of_string "exists x y. R(x,y) && R(y,x)" in
  Alcotest.(check int) "core untouched" 2 (List.length (Cq.minimize core))

let test_components () =
  let c = cq_of_string "exists x y u v. R(x) && S(x,y) && T(u) && S(u,v)" in
  let comps = Cq.connected_components c in
  Alcotest.(check int) "two components" 2 (List.length comps);
  let ground = cq_of_string "R(1) && S(1,2)" in
  Alcotest.(check int) "ground atoms split" 2 (List.length (Cq.connected_components ground))

let test_ucq_of_sentence () =
  let ucq, mode = Ucq.of_sentence (parse_s "exists x y. R(x) && S(x,y) || exists u v. T(u) && S(u,v)") in
  Alcotest.(check bool) "direct" true (mode = Ucq.Direct);
  Alcotest.(check int) "two disjuncts" 2 (List.length ucq);
  (* forall sentence: complemented mode, negated symbols *)
  let ucq2, mode2 = Ucq.of_sentence (parse_s "forall x y. S(x,y) => R(x)") in
  Alcotest.(check bool) "complemented" true (mode2 = Ucq.Complemented);
  Alcotest.(check int) "one disjunct" 1 (List.length ucq2);
  (match ucq2 with
  | [ cq ] ->
      Alcotest.(check bool) "S positive, R complemented" true
        (List.exists (fun (a : Cq.atom) -> a.Cq.rel = "R" && a.Cq.comp) cq
        && List.exists (fun (a : Cq.atom) -> a.Cq.rel = "S" && not a.Cq.comp) cq)
  | _ -> Alcotest.fail "expected single disjunct");
  (* non-unate sentences are rejected *)
  (match Ucq.of_sentence (parse_s "forall x. (R(x) => S(x)) && (S(x) => T(x))") with
  | exception Ucq.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported");
  (* mixed prefixes are rejected *)
  match Ucq.of_sentence (parse_s "forall x. exists y. S(x,y)") with
  | exception Ucq.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported on mixed prefix"

let test_ucq_minimize () =
  let ucq, _ =
    Ucq.of_sentence
      (parse_s "exists x y. R(x) && S(x,y) || exists z. R(z) || exists u v. R(u) && S(u,v) && S(u,v)")
  in
  let m = Ucq.minimize ucq in
  (* both R∧S disjuncts are contained in R(z) *)
  Alcotest.(check int) "one disjunct survives" 1 (List.length m);
  Alcotest.(check bool) "equivalent" true (Ucq.equivalent ucq m)

(* Property: CQ containment is sound w.r.t. semantics on random worlds. *)
let gen_cq =
  QCheck2.Gen.(
    let var = map (fun i -> Fo.Var (Printf.sprintf "v%d" i)) (int_range 0 2) in
    let atom =
      oneof
        [
          map (fun v -> Cq.atom "R" [ v ]) var;
          map2 (fun v1 v2 -> Cq.atom "S" [ v1; v2 ]) var var;
          map (fun v -> Cq.atom "T" [ v ]) var;
        ]
    in
    let* n = int_range 1 4 in
    map Cq.make (flatten_l (List.init n (fun _ -> atom))))

let gen_world =
  QCheck2.Gen.(
    let value = map Core.Value.int (int_range 0 2) in
    let fact =
      oneof
        [
          map (fun v -> ("R", [ v ])) value;
          map2 (fun v1 v2 -> ("S", [ v1; v2 ])) value value;
          map (fun v -> ("T", [ v ])) value;
        ]
    in
    let* n = int_range 0 6 in
    map Core.World.of_facts (flatten_l (List.init n (fun _ -> fact))))

let domain3 = List.init 3 Core.Value.int

let sat_cq w cq = Semantics.holds ~domain:domain3 w (Cq.to_fo cq)

let prop_containment_sound =
  Test_util.qcheck ~count:500 "containment sound on random worlds"
    QCheck2.Gen.(triple gen_cq gen_cq gen_world)
    (fun (c1, c2, w) ->
      if Cq.contained c1 c2 then (not (sat_cq w c1)) || sat_cq w c2 else true)

let prop_minimize_preserves_semantics =
  Test_util.qcheck ~count:500 "minimization preserves semantics"
    QCheck2.Gen.(pair gen_cq gen_world)
    (fun (c, w) -> sat_cq w c = sat_cq w (Cq.minimize c))

let prop_conjoin_is_conjunction =
  Test_util.qcheck ~count:500 "conjoin is Boolean conjunction"
    QCheck2.Gen.(triple gen_cq gen_cq gen_world)
    (fun (c1, c2, w) -> sat_cq w (Cq.conjoin c1 c2) = (sat_cq w c1 && sat_cq w c2))

let prop_components_partition =
  Test_util.qcheck "components partition the atoms" gen_cq (fun c ->
      let comps = Cq.connected_components c in
      List.length (List.concat comps) = List.length c)

(* ---------- random FO sentences: roundtrip and transform soundness ---------- *)

let gen_sentence =
  QCheck2.Gen.(
    let vars = [ "x"; "y"; "z" ] in
    let term =
      oneof
        [
          map (fun i -> Fo.Var (List.nth vars i)) (int_range 0 2);
          map (fun i -> Fo.Const (Core.Value.Int i)) (int_range 0 2);
          map (fun s -> Fo.Const (Core.Value.Str s)) (oneofl [ "a"; "b" ]);
        ]
    in
    let atom =
      oneof
        [
          map (fun t -> Fo.Atom { Fo.rel = "R"; args = [ t ] }) term;
          map2 (fun t1 t2 -> Fo.Atom { Fo.rel = "S"; args = [ t1; t2 ] }) term term;
          map (fun t -> Fo.Atom { Fo.rel = "T"; args = [ t ] }) term;
        ]
    in
    let matrix =
      sized_size (int_range 0 5) @@ fix (fun self n ->
          if n = 0 then atom
          else
            oneof
              [
                atom;
                map (fun f -> Fo.Not f) (self (n - 1));
                map2 (fun f g -> Fo.And (f, g)) (self (n / 2)) (self (n / 2));
                map2 (fun f g -> Fo.Or (f, g)) (self (n / 2)) (self (n / 2));
                map2 (fun f g -> Fo.Implies (f, g)) (self (n / 2)) (self (n / 2));
              ])
    in
    let* m = matrix in
    (* close the sentence with a random quantifier per free variable *)
    let+ quants = flatten_l (List.map (fun _ -> bool) (Fo.free_vars m)) in
    List.fold_left2
      (fun f v is_forall -> if is_forall then Fo.Forall (v, f) else Fo.Exists (v, f))
      m (Fo.free_vars m) quants)

let prop_pp_parse_roundtrip =
  Test_util.qcheck ~count:500 "pp/parse roundtrip" gen_sentence (fun q ->
      let printed = Fo.to_string q in
      match Parser.parse_sentence printed with
      | q' -> Fo.equal q q'
      | exception Parser.Error msg ->
          QCheck2.Test.fail_reportf "parse error on %S: %s" printed msg)

let gen_tiny_world =
  QCheck2.Gen.(
    let value = map Core.Value.int (int_range 0 2) in
    let fact =
      oneof
        [
          map (fun v -> ("R", [ v ])) value;
          map2 (fun v1 v2 -> ("S", [ v1; v2 ])) value value;
          map (fun v -> ("T", [ v ])) value;
        ]
    in
    let* n = int_range 0 6 in
    map Core.World.of_facts (flatten_l (List.init n (fun _ -> fact))))

let domain_prop = List.init 3 Core.Value.int

let holds w q = Semantics.holds ~domain:domain_prop w q

let prop_transforms_preserve_semantics =
  Test_util.qcheck ~count:400 "nnf/simplify/prenex/standardize preserve semantics"
    QCheck2.Gen.(pair gen_sentence gen_tiny_world)
    (fun (q, w) ->
      let reference = holds w q in
      holds w (Fo.nnf q) = reference
      && holds w (Fo.simplify q) = reference
      && holds w (Fo.elim_implies q) = reference
      && holds w (Fo.standardize_apart q) = reference
      &&
      let prefix, matrix = Fo.prenex q in
      let rebuilt =
        List.fold_right
          (fun (kind, v) f ->
            match kind with Fo.Q_exists -> Fo.Exists (v, f) | Fo.Q_forall -> Fo.Forall (v, f))
          prefix matrix
      in
      holds w rebuilt = reference)

let prop_dual_involution =
  Test_util.qcheck ~count:300 "dual is an involution" gen_sentence (fun q ->
      let q = Fo.elim_implies q in
      Fo.equal (Fo.dual (Fo.dual q)) q)

let prop_nnf_negation_free =
  Test_util.qcheck ~count:300 "nnf pushes negation to atoms" gen_sentence (fun q ->
      let rec ok = function
        | Fo.True | Fo.False | Fo.Atom _ -> true
        | Fo.Not (Fo.Atom _) -> true
        | Fo.Not _ -> false
        | Fo.And (f, g) | Fo.Or (f, g) -> ok f && ok g
        | Fo.Implies _ -> false
        | Fo.Exists (_, f) | Fo.Forall (_, f) -> ok f
      in
      ok (Fo.nnf q))

let prop_ucq_reduction_sound =
  (* whenever the unate reduction applies, the UCQ has the same probability
     as the sentence on random small TIDs *)
  Test_util.qcheck ~count:200 "UCQ reduction preserves probability"
    QCheck2.Gen.(pair gen_sentence (int_range 1 1000))
    (fun (q, seed) ->
      match Ucq.of_sentence q with
      | exception Ucq.Unsupported _ -> true
      | ucq, mode ->
          let db =
            Probdb_workload.Gen.random_tid ~seed ~domain_size:2
              (List.map
                 (fun (name, arity) -> Probdb_workload.Gen.spec ~density:0.7 name arity)
                 [ ("R", 1); ("S", 2); ("T", 1) ])
          in
          let p_sentence = Brute_force.probability db q in
          let p_ucq = Brute_force.probability db (Ucq.to_fo ucq) in
          Float.abs (p_sentence -. Ucq.apply_mode mode p_ucq) < 1e-9)

let suites =
  [
    ( "logic.fo",
      [
        Alcotest.test_case "parser basics" `Quick test_parser_basics;
        Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
        Alcotest.test_case "parser errors" `Quick test_parser_errors;
        Alcotest.test_case "free vars and substitution" `Quick test_free_vars_subst;
        Alcotest.test_case "nnf and prenex" `Quick test_nnf_and_prenex;
        Alcotest.test_case "polarities and unateness" `Quick test_polarity_unate;
        Alcotest.test_case "dual query" `Quick test_dual;
        Alcotest.test_case "dual probability identity" `Quick test_dual_probability;
        Alcotest.test_case "semantics" `Quick test_semantics;
        Alcotest.test_case "Example 2.1 (Fig. 1)" `Quick test_example_2_1;
        Alcotest.test_case "non-Boolean answers" `Quick test_answers;
        prop_pp_parse_roundtrip;
        prop_transforms_preserve_semantics;
        prop_dual_involution;
        prop_nnf_negation_free;
        prop_ucq_reduction_sound;
      ] );
    ( "logic.cq",
      [
        Alcotest.test_case "hierarchy test" `Quick test_hierarchical;
        Alcotest.test_case "small dichotomy classifier" `Quick test_dichotomy_classifier;
        Alcotest.test_case "containment" `Quick test_containment;
        Alcotest.test_case "minimization" `Quick test_minimization;
        Alcotest.test_case "connected components" `Quick test_components;
        Alcotest.test_case "ucq of sentence" `Quick test_ucq_of_sentence;
        Alcotest.test_case "ucq minimization" `Quick test_ucq_minimize;
        prop_containment_sound;
        prop_minimize_preserves_semantics;
        prop_conjoin_is_conjunction;
        prop_components_partition;
      ] );
  ]
