module Core = Probdb_core
module L = Probdb_logic
module Sym = Probdb_symmetric
module Sym_db = Sym.Sym_db
module Wfomc = Sym.Wfomc
module Cf = Sym.Closed_forms

let parse = L.Parser.parse_sentence

let check_vs_brute name db q =
  let tid = Sym_db.to_tid db in
  Test_util.check_float name
    (L.Brute_force.probability tid q)
    (Wfomc.probability db q)

let test_sym_db_basics () =
  let db = Sym_db.make ~n:3 [ ("R", 1, 0.3); ("S", 2, 0.6) ] in
  Alcotest.(check int) "tuple count" 12 (Sym_db.tuple_count db);
  Test_util.check_float "prob" 0.6 (Sym_db.prob db "S");
  Alcotest.(check int) "arity" 2 (Sym_db.arity db "S");
  let tid = Sym_db.to_tid db in
  Alcotest.(check int) "materialised support" 12 (Core.Tid.support_size tid);
  Alcotest.(check bool) "all S probs equal" true
    (List.for_all (fun (_, p) -> p = 0.6) (Core.Relation.rows (Core.Tid.relation tid "S")));
  Alcotest.check_raises "arity 3 rejected"
    (Invalid_argument "Sym_db.make: U has arity 3 (only 1 and 2 supported)")
    (fun () -> ignore (Sym_db.make ~n:2 [ ("U", 3, 0.5) ]))

let test_h0_closed_form_vs_brute () =
  let h0 = parse "forall x y. R(x) || S(x,y) || T(y)" in
  List.iter
    (fun n ->
      let db = Sym_db.make ~n [ ("R", 1, 0.3); ("S", 2, 0.6); ("T", 1, 0.45) ] in
      let tid = Sym_db.to_tid db in
      Test_util.check_float
        (Printf.sprintf "H0 closed form, n=%d" n)
        (L.Brute_force.probability tid h0)
        (Cf.h0 ~n ~p_r:0.3 ~p_s:0.6 ~p_t:0.45))
    [ 1; 2; 3 ]

let test_h0_wfomc_matches_closed_form () =
  let h0 = parse "forall x y. R(x) || S(x,y) || T(y)" in
  List.iter
    (fun n ->
      let db = Sym_db.make ~n [ ("R", 1, 0.25); ("S", 2, 0.8); ("T", 1, 0.5) ] in
      Test_util.check_float
        (Printf.sprintf "H0 wfomc = closed form, n=%d" n)
        (Cf.h0 ~n ~p_r:0.25 ~p_s:0.8 ~p_t:0.5)
        (Wfomc.probability db h0))
    [ 1; 2; 4; 7; 10 ]

let test_forall_exists_closed_form () =
  List.iter
    (fun n ->
      let db = Sym_db.make ~n [ ("S", 2, 0.35) ] in
      check_vs_brute (Printf.sprintf "∀∃ vs brute, n=%d" n) db
        (parse "forall x. exists y. S(x,y)");
      Test_util.check_float
        (Printf.sprintf "∀∃ closed form, n=%d" n)
        (Cf.forall_exists_s ~n ~p_s:0.35)
        (Wfomc.probability db (parse "forall x. exists y. S(x,y)")))
    [ 1; 2; 3 ]

let fo2_zoo =
  [
    ("symmetry", "forall x y. S(x,y) => S(y,x)");
    ("antisymmetry-ish", "forall x y. S(x,y) && S(y,x) => S(x,x)");
    ("exists-forall", "exists x. forall y. S(x,y)");
    ("exists-exists", "exists x y. S(x,y) && S(y,x)");
    ("diagonal", "forall x. S(x,x)");
    ("no-self-loop", "forall x. !S(x,x)");
  ]

let test_fo2_zoo_vs_brute () =
  List.iter
    (fun n ->
      let db = Sym_db.make ~n [ ("S", 2, 0.35) ] in
      List.iter (fun (name, text) ->
          check_vs_brute (Printf.sprintf "%s n=%d" name n) db (parse text))
        fo2_zoo)
    [ 1; 2; 3 ]

let test_mixed_sentences_vs_brute () =
  List.iter
    (fun n ->
      let db = Sym_db.make ~n [ ("R", 1, 0.7); ("S", 2, 0.35) ] in
      List.iter
        (fun (name, text) ->
          check_vs_brute (Printf.sprintf "%s n=%d" name n) db (parse text))
        [
          ("inclusion + totality",
           "(forall x y. S(x,y) => R(x)) && (forall x. exists y. S(x,y))");
          ("disjunction of blocks", "(forall x. R(x)) || (exists x y. S(x,y))");
          ("smokers", "forall x y. R(x) && S(x,y) => R(y)");
          ("two existentials",
           "(exists x. R(x)) && (exists x y. S(x,y))");
          ("negated existential", "!(exists x. R(x) && S(x,x))");
        ])
    [ 2; 3 ]

let test_unsupported () =
  let db = Sym_db.make ~n:2 [ ("S", 2, 0.5) ] in
  (match Wfomc.probability db (parse "forall x y. S(x,y) || S(y,x) || S(0,x)") with
  | exception Wfomc.Unsupported _ -> ()
  | _ -> Alcotest.fail "constants should be unsupported");
  match Wfomc.probability db (parse "exists x. forall y. exists z. S(x,y) && S(y,z)") with
  | exception Wfomc.Unsupported _ -> ()
  | p -> Alcotest.failf "three variables should be unsupported, got %g" p

let test_stats_and_scaling () =
  (* the cell algorithm is polynomial: n=25 H0 runs in well under a second
     and visits C(n+K-1, K-1) compositions *)
  let h0 = parse "forall x y. R(x) || S(x,y) || T(y)" in
  let stats = Wfomc.fresh_stats () in
  let db = Sym_db.make ~n:25 [ ("R", 1, 0.25); ("S", 2, 0.8); ("T", 1, 0.5) ] in
  let p = Wfomc.probability ~stats db h0 in
  Test_util.check_float ~eps:1e-12 "n=25 matches closed form"
    (Cf.h0 ~n:25 ~p_r:0.25 ~p_s:0.8 ~p_t:0.5)
    p;
  Alcotest.(check int) "8 one-types" 8 stats.Wfomc.cells;
  Alcotest.(check bool) "some cells die on the diagonal" true
    (stats.Wfomc.live_cells <= stats.Wfomc.cells);
  Alcotest.(check bool) "composition count polynomial" true
    (stats.Wfomc.compositions < 1_000_000)

let test_term_budget () =
  let db = Sym_db.make ~n:60 [ ("R", 1, 0.25); ("S", 2, 0.8); ("T", 1, 0.5) ] in
  match
    Wfomc.probability ~max_terms:100 db (parse "forall x y. R(x) || S(x,y) || T(y)")
  with
  | exception Wfomc.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected the term budget to trip"

let test_powi_and_binomial () =
  Test_util.check_float "powi negative base" (-8.0) (Cf.powi (-2.0) 3);
  Test_util.check_float "powi zero exponent" 1.0 (Cf.powi 5.0 0);
  Test_util.check_float "binomial" 35.0 (Cf.binomial 7 3);
  Test_util.check_float "binomial edge" 1.0 (Cf.binomial 5 0);
  Test_util.check_float "binomial out of range" 0.0 (Cf.binomial 3 5)

(* Property: on random symmetric databases and the FO² zoo, WFOMC equals
   brute force. *)
let prop_wfomc_matches_brute =
  Test_util.qcheck ~count:60 "wfomc = brute force (random symmetric dbs)"
    QCheck2.Gen.(
      triple (int_range 1 3) (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
    (fun (n, p_r, p_s) ->
      let db = Sym_db.make ~n [ ("R", 1, p_r); ("S", 2, p_s) ] in
      let tid = Sym_db.to_tid db in
      List.for_all
        (fun text ->
          let q = parse text in
          Float.abs (Wfomc.probability db q -. L.Brute_force.probability tid q) < 1e-9)
        [
          "forall x y. S(x,y) => R(x)";
          "forall x. exists y. S(x,y)";
          "exists x. R(x) && S(x,x)";
          "forall x y. R(x) && S(x,y) => R(y)";
        ])

let suites =
  [
    ( "symmetric",
      [
        Alcotest.test_case "sym db basics" `Quick test_sym_db_basics;
        Alcotest.test_case "H0 closed form vs brute force" `Quick test_h0_closed_form_vs_brute;
        Alcotest.test_case "H0 wfomc = closed form" `Quick test_h0_wfomc_matches_closed_form;
        Alcotest.test_case "∀∃ closed form" `Quick test_forall_exists_closed_form;
        Alcotest.test_case "FO² zoo vs brute force" `Quick test_fo2_zoo_vs_brute;
        Alcotest.test_case "mixed sentences vs brute force" `Quick test_mixed_sentences_vs_brute;
        Alcotest.test_case "unsupported inputs" `Quick test_unsupported;
        Alcotest.test_case "stats and polynomial scaling" `Quick test_stats_and_scaling;
        Alcotest.test_case "term budget" `Quick test_term_budget;
        Alcotest.test_case "powi and binomial" `Quick test_powi_and_binomial;
        prop_wfomc_matches_brute;
      ] );
  ]
