open Probdb_lineage
module Core = Probdb_core
module F = Probdb_boolean.Formula
module Logic = Probdb_logic

let parse_s = Logic.Parser.parse_sentence

let small_tid () =
  let t xs = List.map Core.Value.int xs in
  let r = Core.Relation.of_list "R" [ (t [ 1 ], 0.3); (t [ 2 ], 0.8) ] in
  let s =
    Core.Relation.of_list "S" [ (t [ 1; 1 ], 0.5); (t [ 1; 2 ], 0.4); (t [ 2; 2 ], 0.9) ]
  in
  let u = Core.Relation.of_list "T" [ (t [ 1 ], 0.25); (t [ 2 ], 0.75) ] in
  Core.Tid.make [ r; s; u ]

let lineage_prob ctx f = Probdb_boolean.Brute_wmc.probability (Lineage.prob ctx) f

(* Lineage WMC must equal world-enumeration PQE for any sentence. *)
let check_query db q =
  let ctx = Lineage.create db in
  let f = Lineage.of_query ctx q in
  Test_util.check_float
    (Printf.sprintf "lineage WMC = brute force for %s" (Logic.Fo.to_string q))
    (Logic.Brute_force.probability db q)
    (lineage_prob ctx f)

let test_lineage_vs_brute_force () =
  let db = small_tid () in
  List.iter
    (fun s -> check_query db (parse_s s))
    [
      "exists x y. R(x) && S(x,y)";
      "exists x y. R(x) && S(x,y) && T(y)";
      "forall x y. S(x,y) => R(x)";
      "forall x y. R(x) || S(x,y) || T(y)";
      "exists x. R(x) && !T(x)";
      "(exists x. R(x)) || (forall y. T(y))";
      "forall x. exists y. S(x,y)";
      "exists x. R(3)";
      "R(1) && T(2)";
    ]

let test_lineage_example_2_1 () =
  let db = Test_util.fig1_tid () in
  let ctx = Lineage.create db in
  let f = Lineage.of_query ctx (parse_s "forall x y. S(x,y) => R(x)") in
  Test_util.check_float "Example 2.1 via lineage"
    (Test_util.example_2_1_expected ())
    (lineage_prob ctx f)

let test_lineage_structure () =
  (* H0's lineage on a 2x2 complete bipartite database: a positive CNF with
     one clause per (x,y) pair. *)
  let t xs = List.map Core.Value.int xs in
  let r = Core.Relation.of_list "R" [ (t [ 0 ], 0.5); (t [ 1 ], 0.5) ] in
  let s =
    Core.Relation.of_list "S"
      [ (t [ 0; 0 ], 0.5); (t [ 0; 1 ], 0.5); (t [ 1; 0 ], 0.5); (t [ 1; 1 ], 0.5) ]
  in
  let u = Core.Relation.of_list "T" [ (t [ 0 ], 0.5); (t [ 1 ], 0.5) ] in
  let db = Core.Tid.make [ r; s; u ] in
  let ctx = Lineage.create db in
  let f = Lineage.of_query ctx (parse_s "forall x y. R(x) || S(x,y) || T(y)") in
  (match f with
  | F.And clauses ->
      Alcotest.(check int) "4 clauses" 4 (List.length clauses)
  | _ -> Alcotest.failf "expected conjunction, got %s" (F.to_string f));
  Alcotest.(check int) "8 variables" 8 (F.var_count f)

let test_unlisted_tuples_are_false () =
  (* with an empty S, ∃xy R(x)∧S(x,y) grounds to false *)
  let t xs = List.map Core.Value.int xs in
  let r = Core.Relation.of_list "R" [ (t [ 1 ], 0.3) ] in
  let db = Core.Tid.make [ r ] in
  let ctx = Lineage.create db in
  let f = Lineage.of_query ctx (parse_s "exists x y. R(x) && S(x,y)") in
  Alcotest.(check bool) "false lineage" true (F.equal f F.fls);
  (* and a universally quantified negated S grounds to true *)
  let g = Lineage.of_query ctx (parse_s "forall x y. !S(x,y)") in
  Alcotest.(check bool) "true lineage" true (F.equal g F.tru)

let test_fact_var_roundtrip () =
  let db = small_tid () in
  let ctx = Lineage.create db in
  let t xs = List.map Core.Value.int xs in
  (match Lineage.var_of_fact ctx "S" (t [ 1; 2 ]) with
  | None -> Alcotest.fail "expected a variable for S(1,2)"
  | Some id ->
      let rel, tuple = Lineage.fact_of_var ctx id in
      Alcotest.(check string) "rel" "S" rel;
      Alcotest.(check bool) "tuple" true (Core.Tuple.equal tuple (t [ 1; 2 ]));
      Test_util.check_float "prob" 0.4 (Lineage.prob ctx id));
  Alcotest.(check bool) "unlisted" true (Lineage.var_of_fact ctx "S" (t [ 9; 9 ]) = None)

let ucq_of s =
  match Logic.Ucq.of_sentence (parse_s s) with
  | ucq, Logic.Ucq.Direct -> ucq
  | _ -> Alcotest.failf "expected a direct UCQ: %s" s

let test_of_cq_matches_of_query () =
  let db = small_tid () in
  let ctx = Lineage.create db in
  List.iter
    (fun s ->
      let q = parse_s s in
      let ucq = ucq_of s in
      let f1 = Lineage.of_query ctx q in
      let f2 = Lineage.of_ucq ctx ucq in
      Test_util.check_float
        (Printf.sprintf "of_ucq = of_query for %s" s)
        (lineage_prob ctx f1) (lineage_prob ctx f2))
    [
      "exists x y. R(x) && S(x,y)";
      "exists x y. R(x) && S(x,y) && T(y)";
      "exists x y. R(x) && S(x,y) || exists u v. T(u) && S(u,v)";
      "exists x. R(x) && T(x)";
    ]

let test_dnf_lineage () =
  let db = small_tid () in
  let ctx = Lineage.create db in
  let ucq = ucq_of "exists x y. R(x) && S(x,y)" in
  let clauses = Lineage.dnf_of_ucq ctx ucq in
  (* R has 2 tuples; S-tuples joining: R(1)S(1,1), R(1)S(1,2), R(2)S(2,2) *)
  Alcotest.(check int) "3 clauses" 3 (List.length clauses);
  (* DNF probability equals query probability *)
  let f = F.disj (List.map (fun c -> F.conj (List.map F.var c)) clauses) in
  Test_util.check_float "dnf prob"
    (Logic.Brute_force.probability db (parse_s "exists x y. R(x) && S(x,y)"))
    (lineage_prob ctx f);
  let mult = Lineage.multiplicities clauses in
  (* R(1) occurs in 2 clauses, R(2) in 1 *)
  let id_r1 = Option.get (Lineage.var_of_fact ctx "R" [ Core.Value.int 1 ]) in
  let id_r2 = Option.get (Lineage.var_of_fact ctx "R" [ Core.Value.int 2 ]) in
  Alcotest.(check int) "k of R(1)" 2 (List.assoc id_r1 mult);
  Alcotest.(check int) "k of R(2)" 1 (List.assoc id_r2 mult)

(* Property: on random small TIDs and a fixed query zoo, lineage WMC always
   equals world enumeration. *)
let gen_tid =
  QCheck2.Gen.(
    let prob = float_bound_inclusive 1.0 in
    let value = int_range 0 2 in
    let* n_r = int_range 0 3 and* n_s = int_range 0 4 and* n_t = int_range 0 3 in
    let row1 = map2 (fun v p -> ([ Core.Value.int v ], p)) value prob in
    let row2 =
      map2
        (fun (v1, v2) p -> ([ Core.Value.int v1; Core.Value.int v2 ], p))
        (pair value value) prob
    in
    let dedup rows =
      List.fold_left
        (fun acc (t, p) -> if List.mem_assoc t acc then acc else (t, p) :: acc)
        [] rows
    in
    let* r_rows = flatten_l (List.init n_r (fun _ -> row1)) in
    let* s_rows = flatten_l (List.init n_s (fun _ -> row2)) in
    let+ t_rows = flatten_l (List.init n_t (fun _ -> row1)) in
    let add name rows rels =
      match dedup rows with [] -> rels | rows -> Core.Relation.of_list name rows :: rels
    in
    Core.Tid.make (add "R" r_rows (add "S" s_rows (add "T" t_rows []))))

let query_zoo =
  [
    "exists x y. R(x) && S(x,y)";
    "exists x y. R(x) && S(x,y) && T(y)";
    "forall x y. R(x) || S(x,y) || T(y)";
    "forall x y. S(x,y) => R(x)";
    "exists x. R(x) && !T(x)";
    "forall x. exists y. S(x,y)";
  ]

let prop_lineage_equals_brute_force =
  Test_util.qcheck ~count:100 "lineage WMC = world enumeration (random TIDs)" gen_tid
    (fun db ->
      List.for_all
        (fun s ->
          let q = parse_s s in
          let ctx = Lineage.create db in
          let f = Lineage.of_query ctx q in
          let a = Logic.Brute_force.probability db q in
          let b = lineage_prob ctx f in
          Float.abs (a -. b) < 1e-9)
        query_zoo)

let suites =
  [
    ( "lineage",
      [
        Alcotest.test_case "lineage vs brute force (query zoo)" `Quick test_lineage_vs_brute_force;
        Alcotest.test_case "Example 2.1 via lineage" `Quick test_lineage_example_2_1;
        Alcotest.test_case "H0 lineage structure" `Quick test_lineage_structure;
        Alcotest.test_case "unlisted tuples are false" `Quick test_unlisted_tuples_are_false;
        Alcotest.test_case "fact/var roundtrip" `Quick test_fact_var_roundtrip;
        Alcotest.test_case "of_ucq matches of_query" `Quick test_of_cq_matches_of_query;
        Alcotest.test_case "DNF lineage and multiplicities" `Quick test_dnf_lineage;
        prop_lineage_equals_brute_force;
      ] );
  ]
