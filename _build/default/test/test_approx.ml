module Core = Probdb_core
module L = Probdb_logic
module Mc = Probdb_approx.Mc
module Kl = Probdb_approx.Karp_luby
module Gen = Probdb_workload.Gen
module Q = Probdb_workload.Queries
module Lineage = Probdb_lineage.Lineage

let test_mc_converges () =
  let db = Gen.random_tid ~seed:11 ~domain_size:3 [ Gen.spec "R" 1; Gen.spec "S" 2 ] in
  let q = Q.q_hier.Q.query in
  let truth = L.Brute_force.probability db q in
  let est = Mc.estimate ~seed:1 ~samples:20_000 db q in
  let err = Float.abs (est.Mc.mean -. truth) in
  if err > 4.0 *. Float.max est.Mc.std_error 0.004 then
    Alcotest.failf "MC off: estimate %.4f vs truth %.4f (err %.4f)" est.Mc.mean truth err

let test_mc_error_shrinks () =
  let db = Gen.random_tid ~seed:7 ~domain_size:3 [ Gen.spec "R" 1; Gen.spec "S" 2 ] in
  let q = Q.q_hier.Q.query in
  let small = Mc.estimate ~seed:3 ~samples:500 db q in
  let large = Mc.estimate ~seed:3 ~samples:50_000 db q in
  Alcotest.(check bool) "std error shrinks ~1/sqrt(N)" true
    (large.Mc.std_error < small.Mc.std_error /. 5.0)

let test_mc_rejects () =
  let t xs = List.map Core.Value.int xs in
  let bad = Core.Tid.make [ Core.Relation.of_list "R" [ (t [ 1 ], 1.5) ] ] in
  (match Mc.estimate ~samples:10 bad (L.Parser.parse_sentence "exists x. R(x)") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of non-standard TID")

let test_mc_extremes () =
  let t xs = List.map Core.Value.int xs in
  let db =
    Core.Tid.make [ Core.Relation.of_list "R" [ (t [ 1 ], 1.0); (t [ 2 ], 0.0) ] ]
  in
  let sure = Mc.estimate ~samples:100 db (L.Parser.parse_sentence "exists x. R(x)") in
  Test_util.check_float "certain event" 1.0 sure.Mc.mean;
  let impossible = Mc.estimate ~samples:100 db (L.Parser.parse_sentence "R(2)") in
  Test_util.check_float "impossible event" 0.0 impossible.Mc.mean

let probs v = 0.1 +. (0.05 *. float_of_int (v mod 10))

let test_kl_exact_identity () =
  (* the sampling identity evaluated exactly equals brute-force DNF
     probability *)
  let clauses = [ [ 0; 1 ]; [ 1; 2 ]; [ 3 ] ] in
  let f =
    Probdb_boolean.Formula.disj
      (List.map
         (fun c -> Probdb_boolean.Formula.conj (List.map Probdb_boolean.Formula.var c))
         clauses)
  in
  Test_util.check_float "identity"
    (Probdb_boolean.Brute_wmc.probability probs f)
    (Kl.exact_via_sampling_identity ~prob:probs clauses)

let test_kl_converges () =
  let clauses = [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ]; [ 4 ] ] in
  let truth = Kl.exact_via_sampling_identity ~prob:probs clauses in
  let est = Kl.estimate ~seed:5 ~samples:50_000 ~prob:probs clauses in
  let err = Float.abs (est.Kl.mean -. truth) in
  if err > 4.0 *. Float.max est.Kl.std_error 1e-4 then
    Alcotest.failf "KL off: %.5f vs %.5f" est.Kl.mean truth;
  Alcotest.(check bool) "union weight bounds p" true (est.Kl.union_weight >= truth -. 1e-12)

let test_kl_empty_and_trivial () =
  let est = Kl.estimate ~samples:10 ~prob:probs [] in
  Test_util.check_float "empty DNF" 0.0 est.Kl.mean;
  (* single clause: estimator is exact with zero variance *)
  let est1 = Kl.estimate ~samples:100 ~prob:probs [ [ 0; 1 ] ] in
  Test_util.check_float "single clause" (probs 0 *. probs 1) est1.Kl.mean;
  Test_util.check_float "zero variance" 0.0 est1.Kl.std_error

let test_kl_on_h0_lineage () =
  (* Karp-Luby estimates the #P-hard H0 within its confidence interval *)
  let db = Gen.h0_db ~seed:9 ~n:3 () in
  let ctx = Lineage.create db in
  let ucq, _ = L.Ucq.of_sentence Q.h0.Q.query in
  let clauses = Lineage.dnf_of_ucq ctx ucq in
  let truth = L.Brute_force.probability db Q.h0.Q.query in
  let est = Kl.estimate ~seed:2 ~samples:40_000 ~prob:(Lineage.prob ctx) clauses in
  let err = Float.abs (est.Kl.mean -. truth) in
  if err > 4.0 *. Float.max est.Kl.std_error 1e-3 then
    Alcotest.failf "KL on H0 off: %.5f vs %.5f (se %.5f)" est.Kl.mean truth est.Kl.std_error

let test_kl_small_probability_advantage () =
  (* with a tiny p(F), Karp-Luby keeps a small *relative* error where naive
     MC would mostly see zero hits *)
  let tiny v = if v < 10 then 0.01 else 0.01 in
  let clauses = [ [ 0; 1 ]; [ 2; 3 ] ] in
  let truth = Kl.exact_via_sampling_identity ~prob:tiny clauses in
  let est = Kl.estimate ~seed:4 ~samples:20_000 ~prob:tiny clauses in
  let rel_err = Float.abs (est.Kl.mean -. truth) /. truth in
  Alcotest.(check bool)
    (Printf.sprintf "relative error %.3f small" rel_err)
    true (rel_err < 0.1)

let prop_kl_unbiased_small =
  Test_util.qcheck ~count:30 "KL matches exact on random small DNFs"
    QCheck2.Gen.(
      let clause = list_size (int_range 1 3) (int_range 0 5) in
      pair (list_size (int_range 1 4) clause) (int_range 1 1000))
    (fun (clauses, seed) ->
      let clauses = List.map (List.sort_uniq Int.compare) clauses in
      let truth = Kl.exact_via_sampling_identity ~prob:probs clauses in
      let est = Kl.estimate ~seed ~samples:30_000 ~prob:probs clauses in
      Float.abs (est.Kl.mean -. truth) < 5.0 *. Float.max est.Kl.std_error 2e-3)

let suites =
  [
    ( "approx",
      [
        Alcotest.test_case "MC converges" `Quick test_mc_converges;
        Alcotest.test_case "MC error shrinks" `Quick test_mc_error_shrinks;
        Alcotest.test_case "MC rejects non-standard" `Quick test_mc_rejects;
        Alcotest.test_case "MC extremes" `Quick test_mc_extremes;
        Alcotest.test_case "KL sampling identity" `Quick test_kl_exact_identity;
        Alcotest.test_case "KL converges" `Quick test_kl_converges;
        Alcotest.test_case "KL empty and single clause" `Quick test_kl_empty_and_trivial;
        Alcotest.test_case "KL on H0 lineage" `Quick test_kl_on_h0_lineage;
        Alcotest.test_case "KL small-probability advantage" `Quick test_kl_small_probability_advantage;
        prop_kl_unbiased_small;
      ] );
  ]
