(* Edge cases and failure injection across the stack: malformed inputs,
   missing relations, extreme probabilities, empty databases. *)

module Core = Probdb_core
module L = Probdb_logic
module E = Probdb_engine.Engine
module Lift = Probdb_lifted.Lift

let t xs = List.map Core.Value.int xs
let parse_s = L.Parser.parse_sentence

(* ---------- CSV loader ---------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_csv_malformed_probability () =
  let path = tmp "bad_prob.csv" in
  write_file path "1,2,not_a_number\n";
  match Core.Csv_io.load_relation "R" path with
  | exception Failure msg ->
      Alcotest.(check bool) "line number in message" true
        (String.length msg > 0 && String.contains msg ':')
  | _ -> Alcotest.fail "expected Failure on malformed probability"

let test_csv_missing_columns () =
  let path = tmp "short_row.csv" in
  write_file path "0.5\n";
  match Core.Csv_io.load_relation "R" path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on missing value columns"

let test_csv_comments_and_blanks () =
  let path = tmp "comments.csv" in
  write_file path "# header comment\n\n1,0.5\n  \n2,0.25\n";
  let rel = Core.Csv_io.load_relation "R" path in
  Alcotest.(check int) "two rows" 2 (Core.Relation.cardinal rel)

(* ---------- missing relations: probability-0 semantics everywhere ---------- *)

let test_missing_relation_consistency () =
  (* the query mentions T, the database has no T at all: every method must
     treat T as empty *)
  let db = Core.Tid.make ~domain:(List.map Core.Value.int [ 0; 1 ])
      [ Core.Relation.of_list "R" [ (t [ 0 ], 0.5) ];
        Core.Relation.of_list "S" [ (t [ 0; 1 ], 0.5) ] ] in
  let q = parse_s "exists x y. R(x) && S(x,y) && T(y)" in
  let truth = L.Brute_force.probability db q in
  Test_util.check_float "brute = 0" 0.0 truth;
  List.iter
    (fun s ->
      let config = { E.default_config with E.strategies = [ s ] } in
      match E.evaluate ~config db q with
      | r -> Test_util.check_float (E.strategy_name s) truth (E.value r.E.outcome)
      | exception E.No_method _ -> () (* refusing is also fine *))
    [ E.Obdd; E.Dpll; E.World_enum; E.Read_once ];
  (* a universally-quantified query over the missing relation is true *)
  let q2 = parse_s "forall x y. T(y) => R(x)" in
  Test_util.check_float "vacuous forall" 1.0 (E.probability db q2)

(* ---------- extreme probabilities ---------- *)

let test_zero_and_one_probabilities () =
  let db =
    Core.Tid.make
      [ Core.Relation.of_list "R" [ (t [ 0 ], 0.0); (t [ 1 ], 1.0) ];
        Core.Relation.of_list "S" [ (t [ 1; 1 ], 1.0); (t [ 0; 0 ], 0.0) ] ]
  in
  let q = parse_s "exists x y. R(x) && S(x,y)" in
  List.iter
    (fun s ->
      let config = { E.default_config with E.strategies = [ s ] } in
      match E.evaluate ~config db q with
      | r -> Test_util.check_float (E.strategy_name s) 1.0 (E.value r.E.outcome)
      | exception E.No_method _ -> ())
    [ E.Lifted; E.Obdd; E.Dpll; E.World_enum ];
  (* certain complement *)
  let q2 = parse_s "exists x. R(x) && !S(x,x)" in
  Test_util.check_float "mixed negation with extremes"
    (L.Brute_force.probability db q2)
    (E.probability db q2)

(* ---------- empty databases and trivial queries ---------- *)

let test_empty_database () =
  let db = Core.Tid.make ~domain:[ Core.Value.int 0 ] [] in
  Test_util.check_float "exists over empty db" 0.0
    (E.probability db (parse_s "exists x. R(x)"));
  Test_util.check_float "forall over empty db" 1.0
    (E.probability db (parse_s "forall x. R(x) => R(x)"));
  Test_util.check_float "true" 1.0 (E.probability db L.Fo.True);
  Test_util.check_float "false" 0.0 (E.probability db L.Fo.False)

let test_trivial_queries_via_lifted () =
  let db = Core.Tid.make [ Core.Relation.of_list "R" [ (t [ 0 ], 0.4) ] ] in
  Test_util.check_float "single ground atom" 0.4 (Lift.probability db (parse_s "R(0)"));
  Test_util.check_float "negated ground atom via forall" 0.6
    (Lift.probability db (parse_s "forall x. !R(0)"));
  Test_util.check_float "tautology" 1.0
    (E.probability db (parse_s "R(0) || !R(0)"))

(* ---------- engine argument validation ---------- *)

let test_engine_validation () =
  let db = Core.Tid.make [ Core.Relation.of_list "R" [ (t [ 0 ], 0.4) ] ] in
  (match E.evaluate db (L.Parser.parse ~free:[ "x" ] "R(x)") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "open formula must be rejected by evaluate");
  match E.answers ~free:[] db (L.Parser.parse ~free:[ "x" ] "R(x)") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undeclared free variables must be rejected"

(* ---------- duplicate variables & constants through every layer ---------- *)

let test_repeated_vars_and_constants () =
  let db =
    Core.Tid.make
      [ Core.Relation.of_list "S"
          [ (t [ 0; 0 ], 0.5); (t [ 0; 1 ], 0.5); (t [ 1; 1 ], 0.25) ] ]
  in
  List.iter
    (fun text ->
      let q = parse_s text in
      Test_util.check_float text
        (L.Brute_force.probability db q)
        (E.probability ~config:E.exact_only db q))
    [
      "exists x. S(x,x)";
      "exists x. S(0,x) && S(x,1)";
      "forall x. S(x,x) => S(0,x)";
      "exists x y. S(x,y) && S(y,x)";
    ]

(* ---------- non-standard probabilities flow through exact methods ---------- *)

let test_nonstandard_probabilities () =
  (* weights outside [0,1] (MLN Or-encoding) must work through lineage-based
     exact inference, and Karp-Luby must refuse them *)
  let db =
    Core.Tid.make
      [ Core.Relation.of_list "R" [ (t [ 0 ], 1.25); (t [ 1 ], -0.25) ];
        Core.Relation.of_list "S" [ (t [ 0; 1 ], 0.5) ] ]
  in
  let q = parse_s "exists x y. R(x) && S(x,y)" in
  let truth = L.Brute_force.probability db q in
  List.iter
    (fun s ->
      let config = { E.default_config with E.strategies = [ s ] } in
      let r = E.evaluate ~config db q in
      Test_util.check_float (E.strategy_name s) truth (E.value r.E.outcome))
    [ E.Lifted; E.Obdd; E.Dpll ];
  let config = { E.default_config with E.strategies = [ E.Karp_luby ] } in
  match E.evaluate ~config db q with
  | exception E.No_method [ (E.Karp_luby, _) ] -> ()
  | _ -> Alcotest.fail "Karp-Luby must refuse non-standard probabilities"

let suites =
  [
    ( "robustness",
      [
        Alcotest.test_case "csv malformed probability" `Quick test_csv_malformed_probability;
        Alcotest.test_case "csv missing columns" `Quick test_csv_missing_columns;
        Alcotest.test_case "csv comments and blanks" `Quick test_csv_comments_and_blanks;
        Alcotest.test_case "missing relation = empty" `Quick test_missing_relation_consistency;
        Alcotest.test_case "zero/one probabilities" `Quick test_zero_and_one_probabilities;
        Alcotest.test_case "empty database" `Quick test_empty_database;
        Alcotest.test_case "trivial queries" `Quick test_trivial_queries_via_lifted;
        Alcotest.test_case "engine validation" `Quick test_engine_validation;
        Alcotest.test_case "repeated vars and constants" `Quick test_repeated_vars_and_constants;
        Alcotest.test_case "non-standard probabilities" `Quick test_nonstandard_probabilities;
      ] );
  ]
