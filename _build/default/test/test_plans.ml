module Core = Probdb_core
module L = Probdb_logic
module P = Probdb_plans
module Q = Probdb_workload.Queries
module Gen = Probdb_workload.Gen

let cq_of (e : Q.entry) =
  match L.Ucq.of_sentence e.Q.query with
  | [ cq ], L.Ucq.Direct -> cq
  | _ -> Alcotest.failf "%s is not a single ∃-CQ" e.Q.name

let db_for cq ~seed ~domain_size =
  let rels =
    List.map (fun (name, _comp) -> name) (L.Cq.symbols cq)
    |> List.map (fun name ->
           let arity =
             List.find_map
               (fun (a : L.Cq.atom) ->
                 if String.equal a.L.Cq.rel name then Some (List.length a.L.Cq.args)
                 else None)
               cq
             |> Option.get
           in
           Gen.spec ~density:0.8 name arity)
  in
  Gen.random_tid ~seed ~domain_size rels

let exact db cq = L.Brute_force.probability db (L.Cq.to_fo cq)

(* ---------- the Sec. 6 worked example ---------- *)

let fig1_s_only_probs = Test_util.fig1_probs

let test_sec6_plans_on_fig1 () =
  (* Plan1 = γ(R ⋈x S), Plan2 = γ(R ⋈x γx(S)): the paper's footnote gives
     both closed forms on the Fig. 1 database. *)
  let db = Test_util.fig1_tid () in
  let r_atom = L.Cq.of_vars "R" [ "x" ] in
  let s_atom = L.Cq.of_vars "S" [ "x"; "y" ] in
  let plan1 = P.Plan.Project ([], P.Plan.Join (P.Plan.Scan r_atom, P.Plan.Scan s_atom)) in
  let plan2 =
    P.Plan.Project
      ([], P.Plan.Join (P.Plan.Scan r_atom, P.Plan.Project ([ "x" ], P.Plan.Scan s_atom)))
  in
  let p, q = fig1_s_only_probs in
  let p1, p2 = (List.nth p 0, List.nth p 1) in
  let q1, q2, q3, q4, q5 =
    (List.nth q 0, List.nth q 1, List.nth q 2, List.nth q 3, List.nth q 4)
  in
  let expected_plan1 =
    1.
    -. ((1. -. (p1 *. q1)) *. (1. -. (p1 *. q2)) *. (1. -. (p2 *. q3))
        *. (1. -. (p2 *. q4)) *. (1. -. (p2 *. q5)))
  in
  let expected_plan2 =
    let sx1 = 1. -. ((1. -. q1) *. (1. -. q2)) in
    let sx2 = 1. -. ((1. -. q3) *. (1. -. q4) *. (1. -. q5)) in
    1. -. ((1. -. (p1 *. sx1)) *. (1. -. (p2 *. sx2)))
  in
  Test_util.check_float "Plan1 footnote formula" expected_plan1
    (P.Plan.boolean_prob db plan1);
  Test_util.check_float "Plan2 footnote formula" expected_plan2
    (P.Plan.boolean_prob db plan2);
  (* Plan2 is safe and returns the true probability; Plan1 is unsafe *)
  Alcotest.(check bool) "plan1 unsafe" false (P.Plan.is_safe plan1);
  Alcotest.(check bool) "plan2 safe" true (P.Plan.is_safe plan2);
  let truth = exact db (L.Cq.make [ r_atom; s_atom ]) in
  Test_util.check_float "plan2 = exact" truth (P.Plan.boolean_prob db plan2);
  Alcotest.(check bool) "plan1 >= exact" true (P.Plan.boolean_prob db plan1 >= truth -. 1e-12)

let test_safe_plan_construction () =
  let hier = cq_of Q.q_hier in
  (match P.Plan.safe_plan hier with
  | None -> Alcotest.fail "hierarchical query must have a safe plan"
  | Some plan ->
      Alcotest.(check bool) "structurally safe" true (P.Plan.is_safe plan);
      for seed = 1 to 10 do
        let db = db_for hier ~seed ~domain_size:3 in
        Test_util.check_float
          (Printf.sprintf "safe plan exact (seed %d)" seed)
          (exact db hier)
          (P.Plan.boolean_prob db plan)
      done);
  (* non-hierarchical: no safe plan *)
  let h0 = cq_of Q.h0 in
  Alcotest.(check bool) "H0 has no safe plan" true (P.Plan.safe_plan h0 = None)

let test_safe_plan_disconnected () =
  let cq = cq_of { Q.q_hier with Q.query = L.Parser.parse_sentence "exists x y. R(x) && T(y)" } in
  match P.Plan.safe_plan cq with
  | None -> Alcotest.fail "disconnected safe query must have a safe plan"
  | Some plan ->
      Alcotest.(check bool) "safe" true (P.Plan.is_safe plan);
      let db = db_for cq ~seed:4 ~domain_size:3 in
      Test_util.check_float "exact" (exact db cq) (P.Plan.boolean_prob db plan)

let test_enumerate_h0 () =
  let h0 = cq_of Q.h0 in
  let plans = P.Plan.enumerate h0 in
  Alcotest.(check bool) "several plans" true (List.length plans >= 3);
  Alcotest.(check bool) "none safe" true
    (List.for_all (fun p -> not (P.Plan.is_safe p)) plans);
  List.iter
    (fun p ->
      Alcotest.(check (list string)) "boolean output" [] (P.Plan.out_vars p))
    plans

let test_bounds_on_h0 () =
  let h0 = cq_of Q.h0 in
  for seed = 1 to 15 do
    let db = db_for h0 ~seed ~domain_size:3 in
    let truth = exact db h0 in
    let b = P.Bounds.bracket db h0 in
    if not (b.P.Bounds.lower <= truth +. 1e-9) then
      Alcotest.failf "seed %d: lower %.9g > exact %.9g" seed b.P.Bounds.lower truth;
    if not (b.P.Bounds.upper >= truth -. 1e-9) then
      Alcotest.failf "seed %d: upper %.9g < exact %.9g" seed b.P.Bounds.upper truth;
    Alcotest.(check bool) "no safe plan claims exact" true (b.P.Bounds.exact = None)
  done

let test_bounds_exact_on_safe () =
  let hier = cq_of Q.q_hier in
  for seed = 1 to 10 do
    let db = db_for hier ~seed ~domain_size:3 in
    let truth = exact db hier in
    let b = P.Bounds.bracket db hier in
    (match b.P.Bounds.exact with
    | Some e -> Test_util.check_float (Printf.sprintf "exact via safe plan %d" seed) truth e
    | None -> Alcotest.fail "expected a safe plan among enumerated plans");
    Alcotest.(check bool) "bracket contains truth" true
      (b.P.Bounds.lower <= truth +. 1e-9 && truth -. 1e-9 <= b.P.Bounds.upper)
  done

let test_dissociated_db () =
  let h0 = cq_of Q.h0 in
  let db = db_for h0 ~seed:2 ~domain_size:2 in
  let d1 = P.Bounds.dissociated_db db h0 in
  (* probabilities only ever decrease *)
  List.iter
    (fun (rel, tuple, p) ->
      let p1 = Core.Tid.prob d1 rel tuple in
      if p1 > p +. 1e-12 then
        Alcotest.failf "dissociation increased %s%s: %g -> %g" rel
          (Core.Tuple.to_string tuple) p p1)
    (Core.Tid.support db)

let test_scan_constants_and_repeats () =
  let t xs = List.map Core.Value.int xs in
  let s =
    Core.Relation.of_list "S"
      [ (t [ 1; 1 ], 0.3); (t [ 1; 2 ], 0.5); (t [ 2; 2 ], 0.7) ]
  in
  let db = Core.Tid.make [ s ] in
  (* S(x,x): only the diagonal *)
  let diag = P.Ptable.scan db (L.Cq.of_vars "S" [ "x"; "x" ]) in
  Alcotest.(check int) "diagonal rows" 2 (List.length diag.P.Ptable.rows);
  Alcotest.(check (list string)) "one column" [ "x" ] diag.P.Ptable.vars;
  (* S(1,y): constant selection *)
  let sel =
    P.Ptable.scan db (L.Cq.atom "S" [ L.Fo.Const (Core.Value.int 1); L.Fo.Var "y" ])
  in
  Alcotest.(check int) "selected rows" 2 (List.length sel.P.Ptable.rows)

(* Property: on random databases, every enumerated plan brackets the truth:
   lower(D1) ≤ p(Q) ≤ plan(D) for each plan individually (Thm. 6.1). *)
let prop_every_plan_brackets =
  Test_util.qcheck ~count:60 "every plan brackets the truth (H0)"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let h0 = cq_of Q.h0 in
      let db = db_for h0 ~seed ~domain_size:2 in
      let truth = exact db h0 in
      let d1 = P.Bounds.dissociated_db db h0 in
      List.for_all
        (fun plan ->
          let up = P.Plan.boolean_prob db plan in
          let down = P.Plan.boolean_prob d1 plan in
          down <= truth +. 1e-9 && truth <= up +. 1e-9)
        (P.Plan.enumerate h0))

let prop_safe_plans_are_exact =
  Test_util.qcheck ~count:60 "safe plans compute exactly (q_hier family)"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let cq = cq_of Q.q_hier in
      let db = db_for cq ~seed ~domain_size:3 in
      let truth = exact db cq in
      List.for_all
        (fun plan ->
          (not (P.Plan.is_safe plan))
          || Float.abs (P.Plan.boolean_prob db plan -. truth) < 1e-9)
        (P.Plan.enumerate cq))

let suites =
  [
    ( "plans",
      [
        Alcotest.test_case "Sec. 6 worked example (Fig. 1)" `Quick test_sec6_plans_on_fig1;
        Alcotest.test_case "safe plan construction" `Quick test_safe_plan_construction;
        Alcotest.test_case "safe plan for disconnected query" `Quick test_safe_plan_disconnected;
        Alcotest.test_case "plan enumeration for H0" `Quick test_enumerate_h0;
        Alcotest.test_case "bounds bracket H0" `Quick test_bounds_on_h0;
        Alcotest.test_case "bracket exact on safe queries" `Quick test_bounds_exact_on_safe;
        Alcotest.test_case "dissociated database" `Quick test_dissociated_db;
        Alcotest.test_case "scan with constants/repeats" `Quick test_scan_constants_and_repeats;
        prop_every_plan_brackets;
        prop_safe_plans_are_exact;
      ] );
  ]
