module Core = Probdb_core
module L = Probdb_logic
module S = Probdb_provenance.Semiring
module A = Probdb_provenance.Annotate
module F = Probdb_boolean.Formula

let t xs = List.map Core.Value.int xs
let domain3 = List.init 3 Core.Value.int

let cq_of s =
  match L.Ucq.of_sentence (L.Parser.parse_sentence s) with
  | [ cq ], L.Ucq.Direct -> cq
  | _ -> Alcotest.failf "not a single positive CQ: %s" s

let ucq_of s = fst (L.Ucq.of_sentence (L.Parser.parse_sentence s))

(* ---------- semiring laws (qcheck) ---------- *)

let semiring_laws (type a) name (module K : S.S with type t = a) gen =
  Test_util.qcheck ~count:200 (name ^ " semiring laws")
    QCheck2.Gen.(triple gen gen gen)
    (fun (a, b, c) ->
      K.equal (K.plus a (K.plus b c)) (K.plus (K.plus a b) c)
      && K.equal (K.plus a b) (K.plus b a)
      && K.equal (K.plus a K.zero) a
      && K.equal (K.times a (K.times b c)) (K.times (K.times a b) c)
      && K.equal (K.times a K.one) a
      && K.equal (K.times a K.zero) K.zero
      && K.equal (K.times a (K.plus b c)) (K.plus (K.times a b) (K.times a c)))

let gen_poly =
  QCheck2.Gen.(
    let mono = pair (list_size (int_range 0 3) (int_range 0 3)) (int_range 0 4) in
    map S.Polynomial.of_monomials (list_size (int_range 0 4) mono))

(* Note: Formula's times does not distribute syntactically (only
   semantically), so we test its laws semantically. *)
let formula_laws =
  let gen =
    QCheck2.Gen.(
      sized_size (int_range 0 4) @@ fix (fun self n ->
          if n = 0 then oneof [ return F.tru; return F.fls; map F.var (int_range 0 3) ]
          else
            oneof
              [ map F.var (int_range 0 3);
                map2 F.conj2 (self (n / 2)) (self (n / 2));
                map2 F.disj2 (self (n / 2)) (self (n / 2)) ]))
  in
  Test_util.qcheck ~count:200 "Formula semiring laws (semantic)"
    QCheck2.Gen.(pair (triple gen gen gen) (int_bound 1_000_000))
    (fun ((a, b, c), seed) ->
      let assignment x = (seed lsr (x mod 20)) land 1 = 1 in
      let eq f g = F.eval assignment f = F.eval assignment g in
      eq (S.Formula.plus a (S.Formula.plus b c)) (S.Formula.plus (S.Formula.plus a b) c)
      && eq (S.Formula.times a (S.Formula.plus b c))
           (S.Formula.plus (S.Formula.times a b) (S.Formula.times a c)))

(* ---------- annotated evaluation ---------- *)

let world =
  Core.World.of_facts
    [ ("R", t [ 0 ]); ("R", t [ 1 ]); ("S", t [ 0; 1 ]); ("S", t [ 1; 1 ]); ("S", t [ 2; 0 ]) ]

let test_bool_semiring_is_satisfaction () =
  let module B = A.Make (S.Bool) in
  let ann = B.of_world world in
  List.iter
    (fun s ->
      let q = L.Parser.parse_sentence s in
      let ucq, _ = L.Ucq.of_sentence q in
      Alcotest.(check bool) s
        (L.Semantics.holds ~domain:domain3 world q)
        (B.eval_ucq ~domain:domain3 ann ucq))
    [
      "exists x y. R(x) && S(x,y)";
      "exists x. R(x) && S(x,x)";
      "exists x y. R(x) && S(x,y) && R(y)";
      "exists x. S(x,2)";
    ]

let test_counting_semiring_counts_valuations () =
  let module C = A.Make (S.Counting) in
  let ann = C.of_world world in
  (* valuations satisfying R(x) ∧ S(x,y): (0,1), (1,1) *)
  Alcotest.(check int) "two derivations" 2
    (C.eval_cq ~domain:domain3 ann (cq_of "exists x y. R(x) && S(x,y)"));
  (* ∃x S(x,y) for each y... Boolean: count all sat valuations of S(x,y): 3 *)
  Alcotest.(check int) "three S-facts" 3
    (C.eval_cq ~domain:domain3 ann (cq_of "exists x y. S(x,y)"))

let test_tropical_semiring_cheapest () =
  let module T = A.Make (S.Tropical) in
  (* cost of using each fact; min-cost derivation of R(x)∧S(x,y) *)
  let cost rel tuple =
    match rel, tuple with
    | "R", [ Core.Value.Int 0 ] -> 5.0
    | "R", [ Core.Value.Int 1 ] -> 1.0
    | "S", [ Core.Value.Int 0; Core.Value.Int 1 ] -> 1.0
    | "S", [ Core.Value.Int 1; Core.Value.Int 1 ] -> 10.0
    | _ -> S.Tropical.zero
  in
  Test_util.check_float "cheapest derivation" 6.0
    (T.eval_cq ~domain:domain3 cost (cq_of "exists x y. R(x) && S(x,y)"))
  (* (R(0)=5) + (S(0,1)=1) = 6 beats (R(1)=1) + (S(1,1)=10) *)

let test_formula_semiring_is_lineage () =
  (* annotating each fact with its lineage variable recovers the lineage *)
  let db =
    Core.Tid.make
      [
        Core.Relation.of_list "R" [ (t [ 0 ], 0.4); (t [ 1 ], 0.5) ];
        Core.Relation.of_list "S" [ (t [ 0; 1 ], 0.6); (t [ 1; 1 ], 0.7) ];
      ]
  in
  let ctx = Probdb_lineage.Lineage.create db in
  let module FS = A.Make (S.Formula) in
  let ann rel tuple =
    match Probdb_lineage.Lineage.var_of_fact ctx rel tuple with
    | Some v -> F.var v
    | None -> F.fls
  in
  List.iter
    (fun s ->
      let ucq = ucq_of s in
      let via_semiring = FS.eval_ucq ~domain:(Core.Tid.domain db) ann ucq in
      let via_lineage = Probdb_lineage.Lineage.of_ucq ctx ucq in
      (* may differ syntactically; compare by WMC *)
      Test_util.check_float s
        (Probdb_boolean.Brute_wmc.probability (Probdb_lineage.Lineage.prob ctx) via_lineage)
        (Probdb_boolean.Brute_wmc.probability (Probdb_lineage.Lineage.prob ctx) via_semiring))
    [
      "exists x y. R(x) && S(x,y)";
      "exists x y. R(x) && S(x,y) || exists z. R(z) && S(z,z)";
    ]

let test_polynomial_provenance () =
  let module P = A.Make (S.Polynomial) in
  (* facts annotated with distinct indeterminates *)
  let ann rel tuple =
    match rel, tuple with
    | "R", [ Core.Value.Int 0 ] -> S.Polynomial.var 0
    | "R", [ Core.Value.Int 1 ] -> S.Polynomial.var 1
    | "S", [ Core.Value.Int 0; Core.Value.Int 1 ] -> S.Polynomial.var 2
    | "S", [ Core.Value.Int 1; Core.Value.Int 1 ] -> S.Polynomial.var 3
    | _ -> S.Polynomial.zero
  in
  let p = P.eval_cq ~domain:domain3 ann (cq_of "exists x y. R(x) && S(x,y)") in
  (* x0·x2 + x1·x3 *)
  Alcotest.(check int) "two monomials" 2 (List.length (S.Polynomial.monomials p));
  Alcotest.(check bool) "expected polynomial" true
    (S.Polynomial.equal p (S.Polynomial.of_monomials [ ([ 0; 2 ], 1); ([ 1; 3 ], 1) ]));
  (* specialising to 1/0 recovers counting on the world *)
  Alcotest.(check int) "eval at indicator" 2 (S.Polynomial.eval (fun _ -> 1) p);
  (* self-join square: R(x) ∧ R(y) gives (x0+x1)^2 with multiplicities *)
  let sq = P.eval_cq ~domain:domain3 ann (cq_of "exists x y. R(x) && R(y)") in
  Alcotest.(check bool) "square with multiplicities" true
    (S.Polynomial.equal sq
       (S.Polynomial.of_monomials [ ([ 0; 0 ], 1); ([ 0; 1 ], 2); ([ 1; 1 ], 1) ]))

(* property: Bool semiring = Semantics on random CQs and worlds *)
let gen_cq =
  QCheck2.Gen.(
    let term = map (fun i -> Probdb_logic.Fo.Var (Printf.sprintf "v%d" i)) (int_range 0 2) in
    let atom =
      oneof
        [ map (fun v -> L.Cq.atom "R" [ v ]) term;
          map2 (fun v w -> L.Cq.atom "S" [ v; w ]) term term ]
    in
    let* n = int_range 1 3 in
    map L.Cq.make (flatten_l (List.init n (fun _ -> atom))))

let prop_bool_matches_semantics =
  let gen_world =
    QCheck2.Gen.(
      let value = map Core.Value.int (int_range 0 2) in
      let fact =
        oneof
          [ map (fun v -> ("R", [ v ])) value;
            map2 (fun v w -> ("S", [ v; w ])) value value ]
      in
      let* n = int_range 0 5 in
      map Core.World.of_facts (flatten_l (List.init n (fun _ -> fact))))
  in
  Test_util.qcheck ~count:300 "Bool semiring = satisfaction"
    QCheck2.Gen.(pair gen_cq gen_world)
    (fun (cq, w) ->
      let module B = A.Make (S.Bool) in
      B.eval_cq ~domain:domain3 (B.of_world w) cq
      = L.Semantics.holds ~domain:domain3 w (L.Cq.to_fo cq))

let suites =
  [
    ( "provenance",
      [
        semiring_laws "Bool" (module S.Bool) QCheck2.Gen.bool;
        semiring_laws "Counting" (module S.Counting) QCheck2.Gen.(int_range 0 20);
        semiring_laws "Tropical" (module S.Tropical)
          QCheck2.Gen.(map float_of_int (int_range 0 40));
        semiring_laws "Polynomial" (module S.Polynomial) gen_poly;
        formula_laws;
        Alcotest.test_case "Bool = satisfaction" `Quick test_bool_semiring_is_satisfaction;
        Alcotest.test_case "Counting = #valuations" `Quick test_counting_semiring_counts_valuations;
        Alcotest.test_case "Tropical = cheapest derivation" `Quick test_tropical_semiring_cheapest;
        Alcotest.test_case "Formula = lineage" `Quick test_formula_semiring_is_lineage;
        Alcotest.test_case "Polynomial provenance" `Quick test_polynomial_provenance;
        prop_bool_matches_semantics;
      ] );
  ]
