(* Shared helpers for the test suites. *)

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected actual

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* The TID of Fig. 1(a) of the paper: R(x) with p1..p3, S(x,y) with q1..q6. *)
let fig1_probs =
  ([ 0.5; 0.6; 0.7 ], [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ])

let fig1_tid () =
  let open Probdb_core in
  let p, q = fig1_probs in
  let a i = Value.Str (Printf.sprintf "a%d" i) in
  let b i = Value.Str (Printf.sprintf "b%d" i) in
  let r =
    Relation.make (Schema.make "R" [ "x" ])
      (List.mapi (fun i p -> ([ a (i + 1) ], p)) p)
  in
  let s_tuples = [ (1, 1); (1, 2); (2, 3); (2, 4); (2, 5); (4, 6) ] in
  let s =
    Relation.make (Schema.make "S" [ "x"; "y" ])
      (List.map2 (fun (x, y) q -> ([ a x; b y ], q)) s_tuples q)
  in
  Tid.make [ r; s ]

(* The closed-form probability of Example 2.1 for the Fig. 1 database. *)
let example_2_1_expected () =
  let p, q = fig1_probs in
  let p1, p2, _p3 = (List.nth p 0, List.nth p 1, List.nth p 2) in
  let q1, q2, q3, q4, q5, q6 =
    ( List.nth q 0, List.nth q 1, List.nth q 2, List.nth q 3, List.nth q 4,
      List.nth q 5 )
  in
  (p1 +. ((1. -. p1) *. (1. -. q1) *. (1. -. q2)))
  *. (p2 +. ((1. -. p2) *. (1. -. q3) *. (1. -. q4) *. (1. -. q5)))
  *. (1. -. q6)
