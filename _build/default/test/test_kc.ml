open Probdb_kc
module F = Probdb_boolean.Formula
module W = Probdb_boolean.Brute_wmc

let x0 = F.var 0
let x1 = F.var 1
let x2 = F.var 2
let x3 = F.var 3

let probs x = 0.15 +. (0.1 *. float_of_int x)

(* ---------- OBDD ---------- *)

let test_obdd_basics () =
  let m = Obdd.manager ~order:[ 0; 1; 2 ] () in
  let f = F.disj2 (F.conj2 x0 x1) x2 in
  let b = Obdd.of_formula m f in
  Alcotest.(check bool) "eval 110" true (Obdd.eval (fun v -> v <> 2) b);
  Alcotest.(check bool) "eval 000" false (Obdd.eval (fun _ -> false) b);
  Test_util.check_float "wmc" (W.probability probs f) (Obdd.wmc m probs b);
  Test_util.check_float "sat count" (float_of_int (W.count_models f))
    (Obdd.sat_count m ~over_vars:3 b)

let test_obdd_canonicity () =
  let m = Obdd.manager ~order:[ 0; 1; 2 ] () in
  (* equivalent formulas compile to the same node *)
  let a = Obdd.of_formula m (F.disj2 x0 (F.conj2 x0 x1)) in
  let b = Obdd.of_formula m x0 in
  Alcotest.(check bool) "absorption law" true (a == b);
  let c = Obdd.of_formula m (F.conj2 x0 (F.neg x0)) in
  Alcotest.(check bool) "contradiction is zero" true (c == Obdd.zero m);
  let d = Obdd.of_formula m (F.disj2 x0 (F.neg x0)) in
  Alcotest.(check bool) "tautology is one" true (d == Obdd.one m)

let test_obdd_order_matters () =
  (* The classic multiplexer-ish example: (x0∧x1) ∨ (x2∧x3) is small under
     the interleaved-good order and bigger under the bad order. *)
  let f = F.disj2 (F.conj2 x0 x1) (F.conj2 x2 x3) in
  let good = Obdd.manager ~order:[ 0; 1; 2; 3 ] () in
  let bad = Obdd.manager ~order:[ 0; 2; 1; 3 ] () in
  let bg = Obdd.of_formula good f in
  let bb = Obdd.of_formula bad f in
  Alcotest.(check bool) "bad order at least as large" true (Obdd.size bb >= Obdd.size bg);
  Test_util.check_float "same wmc"
    (Obdd.wmc good probs bg) (Obdd.wmc bad probs bb)

let test_obdd_node_limit () =
  let m = Obdd.manager ~max_nodes:2 ~order:[ 0; 1; 2; 3 ] () in
  match Obdd.of_formula m (F.disj2 (F.conj2 x0 x1) (F.conj2 x2 x3)) with
  | exception Obdd.Node_limit 2 -> ()
  | _ -> Alcotest.fail "expected Node_limit"

let test_obdd_default_order () =
  Alcotest.(check (list int)) "first-appearance order" [ 2; 0; 1 ]
    (Obdd.default_order (F.disj2 x2 (F.conj2 x0 x1)))

let gen_formula =
  QCheck2.Gen.(
    sized_size (int_range 0 6) @@ fix (fun self n ->
        if n = 0 then
          oneof [ return F.tru; return F.fls; map F.var (int_range 0 4) ]
        else
          oneof
            [
              map F.var (int_range 0 4);
              map F.neg (self (n - 1));
              map2 F.conj2 (self (n / 2)) (self (n / 2));
              map2 F.disj2 (self (n / 2)) (self (n / 2));
            ]))

let prop_obdd_wmc_matches_brute_force =
  Test_util.qcheck "OBDD wmc = brute force" gen_formula (fun f ->
      let m = Obdd.manager ~order:[ 0; 1; 2; 3; 4 ] () in
      let b = Obdd.of_formula m f in
      Float.abs (Obdd.wmc m probs b -. W.probability probs f) < 1e-9)

let prop_obdd_canonical_equivalence =
  Test_util.qcheck "equivalent formulas share a node"
    QCheck2.Gen.(pair gen_formula gen_formula)
    (fun (f, g) ->
      let m = Obdd.manager ~order:[ 0; 1; 2; 3; 4 ] () in
      let bf = Obdd.of_formula m f and bg = Obdd.of_formula m g in
      let equivalent =
        (* brute-force equivalence over the union of variables *)
        let vars = List.sort_uniq Int.compare (F.vars f @ F.vars g) in
        let rec all assignment = function
          | [] ->
              let a v = List.assoc v assignment in
              F.eval a f = F.eval a g
          | v :: rest ->
              all ((v, true) :: assignment) rest && all ((v, false) :: assignment) rest
        in
        all [] vars
      in
      equivalent = (bf == bg))

(* ---------- Circuits ---------- *)

let test_circuit_fig2a () =
  (* Fig. 2(a): FBDD for (!X)YZ v XY v XZ.  vars: X=0, Y=1, Z=2 *)
  let b = Circuit.builder () in
  let tru = Circuit.tru b and fls = Circuit.fls b in
  let z_leaf = Circuit.decision b 2 ~lo:fls ~hi:tru in
  (* X=1 branch: Y ? 1 : (Z ? 1 : 0) *)
  let x1_branch = Circuit.decision b 1 ~lo:z_leaf ~hi:tru in
  (* X=0 branch: Y ? (Z?1:0) : 0 *)
  let x0_branch = Circuit.decision b 1 ~lo:fls ~hi:z_leaf in
  let root = Circuit.decision b 0 ~lo:x0_branch ~hi:x1_branch in
  let f =
    F.disj
      [ F.conj [ F.neg x0; x1; x2 ]; F.conj [ x0; x1 ]; F.conj [ x0; x2 ] ]
  in
  (* the circuit computes the formula *)
  List.iter
    (fun bits ->
      let a v = List.nth bits v in
      Alcotest.(check bool)
        (Printf.sprintf "agree on %b%b%b" (a 0) (a 1) (a 2))
        (F.eval a f) (Circuit.eval a root))
    [ [ false; false; false ]; [ false; true; true ]; [ true; false; true ];
      [ true; true; false ]; [ true; true; true ]; [ false; true; false ] ];
  Test_util.check_float "wmc matches" (W.probability probs f) (Circuit.wmc probs root);
  Alcotest.(check bool) "valid" true (Result.is_ok (Circuit.check root));
  Alcotest.(check bool) "is an FBDD" true (Circuit.kind ~order:None root = Circuit.Fbdd)

let test_circuit_fig2b () =
  (* Fig. 2(b): decision-DNNF for (!X)YZU v XYZ v XZU, with an AND node.
     vars: X=0, Y=1, Z=2, U=3 *)
  let b = Circuit.builder () in
  let tru = Circuit.tru b and fls = Circuit.fls b in
  let u_leaf = Circuit.decision b 3 ~lo:fls ~hi:tru in
  let y_leaf = Circuit.decision b 1 ~lo:fls ~hi:tru in
  let z_leaf = Circuit.decision b 2 ~lo:fls ~hi:tru in
  (* X=0: Y ∧ Z ∧ U ; X=1: Z ∧ (Y v U) *)
  let yu = Circuit.decision b 1 ~lo:u_leaf ~hi:tru in
  let x0_branch = Circuit.band b [ y_leaf; z_leaf; u_leaf ] in
  let x1_branch = Circuit.band b [ z_leaf; yu ] in
  let root = Circuit.decision b 0 ~lo:x0_branch ~hi:x1_branch in
  let f =
    F.disj
      [
        F.conj [ F.neg x0; x1; x2; x3 ];
        F.conj [ x0; x1; x2 ];
        F.conj [ x0; x2; x3 ];
      ]
  in
  Test_util.check_float "wmc matches" (W.probability probs f) (Circuit.wmc probs root);
  Alcotest.(check bool) "valid" true (Result.is_ok (Circuit.check root));
  Alcotest.(check bool) "decision-DNNF" true
    (Circuit.kind ~order:None root = Circuit.Decision_dnnf);
  (* and it embeds into a d-DNNF with the same WMC *)
  let d = Ddnnf.of_circuit root in
  Alcotest.(check bool) "decomposable" true (Ddnnf.check_decomposable d);
  Alcotest.(check bool) "deterministic" true (Ddnnf.check_deterministic d);
  Test_util.check_float "d-DNNF wmc" (W.probability probs f) (Ddnnf.wmc probs d)

let test_circuit_check_catches_violations () =
  let b = Circuit.builder () in
  let tru = Circuit.tru b and fls = Circuit.fls b in
  let x_leaf = Circuit.decision b 0 ~lo:fls ~hi:tru in
  (* re-reads variable 0 below its own decision *)
  let bad = Circuit.decision b 0 ~lo:x_leaf ~hi:tru in
  Alcotest.(check bool) "re-read detected" true (Result.is_error (Circuit.check bad));
  (* overlapping AND scopes *)
  let bad2 = Circuit.band b [ x_leaf; Circuit.decision b 0 ~lo:tru ~hi:fls ] in
  Alcotest.(check bool) "overlap detected" true (Result.is_error (Circuit.check bad2))

let test_circuit_hash_consing () =
  let b = Circuit.builder () in
  let tru = Circuit.tru b and fls = Circuit.fls b in
  let n1 = Circuit.decision b 0 ~lo:fls ~hi:tru in
  let n2 = Circuit.decision b 0 ~lo:fls ~hi:tru in
  Alcotest.(check bool) "shared" true (n1 == n2);
  let collapsed = Circuit.decision b 1 ~lo:n1 ~hi:n1 in
  Alcotest.(check bool) "redundant test collapsed" true (collapsed == n1);
  Alcotest.(check int) "size counts distinct nodes" 1 (Circuit.size n1)

let test_obdd_to_circuit () =
  let m = Obdd.manager ~order:[ 0; 1; 2 ] () in
  let f = F.disj2 (F.conj2 x0 x1) x2 in
  let bdd = Obdd.of_formula m f in
  let b = Circuit.builder () in
  let c = Obdd.to_circuit b bdd in
  Test_util.check_float "same wmc" (Obdd.wmc m probs bdd) (Circuit.wmc probs c);
  Alcotest.(check bool) "obdd-like" true
    (Circuit.kind ~order:(Some (Obdd.order m)) c = Circuit.Obdd_like);
  Alcotest.(check int) "same size" (Obdd.size bdd) (Circuit.size c)

(* ---------- read-once factorisation ---------- *)

let test_read_once_basic () =
  (* x0 x1 ∨ x0 x2 = x0 (x1 ∨ x2): read-once *)
  let clauses = [ [ 0; 1 ]; [ 0; 2 ] ] in
  (match Read_once.factor clauses with
  | None -> Alcotest.fail "expected read-once"
  | Some f ->
      Alcotest.(check bool) "syntactically read-once" true
        (F.is_syntactically_read_once f);
      let dnf_f =
        F.disj (List.map (fun c -> F.conj (List.map F.var c)) clauses)
      in
      Test_util.check_float "same probability" (W.probability probs dnf_f)
        (Option.get (Read_once.probability probs clauses)));
  (* the triangle x0x1 ∨ x1x2 ∨ x0x2 is the canonical non-read-once DNF *)
  Alcotest.(check bool) "triangle not read-once" false
    (Read_once.is_read_once [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]);
  (* P4-shaped: x0x1 ∨ x1x2 ∨ x2x3 — not read-once *)
  Alcotest.(check bool) "P4 not read-once" false
    (Read_once.is_read_once [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ])

let test_read_once_edge_cases () =
  Alcotest.(check bool) "empty DNF" true (Read_once.factor [] = Some F.fls);
  Alcotest.(check bool) "true DNF" true (Read_once.factor [ [] ] = Some F.tru);
  Alcotest.(check bool) "single var" true (Read_once.factor [ [ 5 ] ] = Some (F.var 5));
  (* absorption applied internally: x0 ∨ x0x1 = x0 *)
  Alcotest.(check bool) "absorption" true (Read_once.factor [ [ 0 ]; [ 0; 1 ] ] = Some (F.var 0));
  (* disjoint disjunction *)
  (match Read_once.factor [ [ 0; 1 ]; [ 2; 3 ] ] with
  | Some f -> Alcotest.(check bool) "or of products" true (F.is_syntactically_read_once f)
  | None -> Alcotest.fail "disjoint DNF is read-once")

let test_hierarchical_lineage_is_read_once () =
  (* the lineage of the hierarchical R(x) ∧ S(x,y) is read-once; H0's is not *)
  let db = Probdb_workload.Gen.h0_db ~seed:5 ~n:4 () in
  let ctx = Probdb_lineage.Lineage.create db in
  let qh, _ =
    Probdb_logic.Ucq.of_sentence Probdb_workload.Queries.q_hier.Probdb_workload.Queries.query
  in
  let clauses = Probdb_lineage.Lineage.dnf_of_ucq ctx qh in
  (match Read_once.probability (Probdb_lineage.Lineage.prob ctx) clauses with
  | None -> Alcotest.fail "hierarchical lineage should be read-once"
  | Some p ->
      Test_util.check_float "read-once wmc = brute force"
        (Probdb_logic.Brute_force.probability db
           Probdb_workload.Queries.q_hier.Probdb_workload.Queries.query)
        p);
  let h0, _ =
    Probdb_logic.Ucq.of_sentence Probdb_workload.Queries.h0.Probdb_workload.Queries.query
  in
  let h0_clauses = Probdb_lineage.Lineage.dnf_of_ucq ctx h0 in
  Alcotest.(check bool) "H0 lineage not read-once" false
    (Read_once.is_read_once h0_clauses)

(* Property: factoring preserves semantics whenever it succeeds; and the
   factored form never repeats a variable. *)
let gen_clauses =
  QCheck2.Gen.(
    let clause = list_size (int_range 1 3) (int_range 0 5) in
    list_size (int_range 0 5) clause)

let prop_read_once_sound =
  Test_util.qcheck ~count:300 "read-once factorisation is sound" gen_clauses
    (fun clauses ->
      let clauses = List.map (List.sort_uniq Int.compare) clauses in
      match Read_once.factor clauses with
      | None -> true
      | Some f ->
          let dnf_f =
            F.disj (List.map (fun c -> F.conj (List.map F.var c)) clauses)
          in
          F.is_syntactically_read_once f
          && Float.abs (W.probability probs f -. W.probability probs dnf_f) < 1e-9)

let prop_read_once_complete_on_roformulas =
  (* build a random read-once formula, expand to DNF, re-factor: must
     succeed *)
  let gen_ro =
    QCheck2.Gen.(
      let rec build vars n =
        if n <= 1 || List.length vars <= 1 then
          return (F.var (List.hd vars))
        else
          let* split = int_range 1 (List.length vars - 1) in
          let left = List.filteri (fun i _ -> i < split) vars in
          let right = List.filteri (fun i _ -> i >= split) vars in
          let* l = build left (n / 2) and* r = build right (n / 2) in
          oneof [ return (F.conj2 l r); return (F.disj2 l r) ]
      in
      let* k = int_range 1 6 in
      build (List.init k Fun.id) 8)
  in
  Test_util.qcheck ~count:300 "read-once DNFs are recognised" gen_ro (fun f ->
      let dnf = F.to_dnf f in
      match Read_once.factor dnf with
      | None -> false
      | Some g -> Float.abs (W.probability probs f -. W.probability probs g) < 1e-9)

let suites =
  [
    ( "kc.read_once",
      [
        Alcotest.test_case "basics" `Quick test_read_once_basic;
        Alcotest.test_case "edge cases" `Quick test_read_once_edge_cases;
        Alcotest.test_case "hierarchical lineage is read-once" `Quick
          test_hierarchical_lineage_is_read_once;
        prop_read_once_sound;
        prop_read_once_complete_on_roformulas;
      ] );
    ( "kc.obdd",
      [
        Alcotest.test_case "basics" `Quick test_obdd_basics;
        Alcotest.test_case "canonicity" `Quick test_obdd_canonicity;
        Alcotest.test_case "order sensitivity" `Quick test_obdd_order_matters;
        Alcotest.test_case "node limit" `Quick test_obdd_node_limit;
        Alcotest.test_case "default order" `Quick test_obdd_default_order;
        prop_obdd_wmc_matches_brute_force;
        prop_obdd_canonical_equivalence;
      ] );
    ( "kc.circuit",
      [
        Alcotest.test_case "Fig. 2(a) FBDD" `Quick test_circuit_fig2a;
        Alcotest.test_case "Fig. 2(b) decision-DNNF" `Quick test_circuit_fig2b;
        Alcotest.test_case "validity checker" `Quick test_circuit_check_catches_violations;
        Alcotest.test_case "hash consing" `Quick test_circuit_hash_consing;
        Alcotest.test_case "obdd to circuit" `Quick test_obdd_to_circuit;
      ] );
  ]
