test/test_robustness.ml: Alcotest Filename List Probdb_core Probdb_engine Probdb_lifted Probdb_logic String Test_util
