test/test_logic.ml: Alcotest Brute_force Cq Dichotomy Float Fo List Parser Printf Probdb_core Probdb_logic Probdb_workload QCheck2 Semantics String Test_util Ucq
