test/test_openworld.ml: Alcotest List Probdb_core Probdb_logic Probdb_openworld QCheck2 Random Test_util
