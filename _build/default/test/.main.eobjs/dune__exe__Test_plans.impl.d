test/test_plans.ml: Alcotest Float List Option Printf Probdb_core Probdb_logic Probdb_plans Probdb_workload QCheck2 String Test_util
