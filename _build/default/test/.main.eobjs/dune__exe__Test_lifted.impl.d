test/test_lifted.ml: Alcotest Float Format Fun List Printf Probdb_core Probdb_lifted Probdb_logic Probdb_workload QCheck2 Test_util
