test/test_boolean.ml: Alcotest Brute_wmc Float Formula List Probdb_boolean QCheck2 String Test_util Var_pool
