test/test_provenance.ml: Alcotest List Printf Probdb_boolean Probdb_core Probdb_lineage Probdb_logic Probdb_provenance QCheck2 Test_util
