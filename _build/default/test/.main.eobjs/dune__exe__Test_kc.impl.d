test/test_kc.ml: Alcotest Circuit Ddnnf Float Fun Int List Obdd Option Printf Probdb_boolean Probdb_kc Probdb_lineage Probdb_logic Probdb_workload QCheck2 Read_once Result Test_util
