test/main.mli:
