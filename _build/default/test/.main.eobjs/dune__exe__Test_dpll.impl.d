test/test_dpll.ml: Alcotest Dpll Float List Probdb_boolean Probdb_dpll Probdb_kc QCheck2 Result Test_util
