test/test_symmetric.ml: Alcotest Float List Printf Probdb_core Probdb_logic Probdb_symmetric QCheck2 Test_util
