test/test_engine.ml: Alcotest Float Format List Printf Probdb_core Probdb_engine Probdb_logic Probdb_symmetric Probdb_workload QCheck2 String Test_util
