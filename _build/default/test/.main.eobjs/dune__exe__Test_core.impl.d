test/test_core.ml: Alcotest Bid Csv_io Filename Float List Probdb_core QCheck2 Ra Relation Schema Test_util Tid Tuple Value World Worlds
