test/test_mln.ml: Alcotest Float List Printf Probdb_boolean Probdb_core Probdb_logic Probdb_mln QCheck2 Test_util
