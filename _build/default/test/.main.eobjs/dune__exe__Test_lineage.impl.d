test/test_lineage.ml: Alcotest Float Lineage List Option Printf Probdb_boolean Probdb_core Probdb_lineage Probdb_logic QCheck2 Test_util
