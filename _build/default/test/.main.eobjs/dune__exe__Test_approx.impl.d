test/test_approx.ml: Alcotest Float Int List Printf Probdb_approx Probdb_boolean Probdb_core Probdb_lineage Probdb_logic Probdb_workload QCheck2 Test_util
