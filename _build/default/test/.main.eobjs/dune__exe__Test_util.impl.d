test/test_util.ml: Alcotest Float List Printf Probdb_core QCheck2 QCheck_alcotest Relation Schema Tid Value
