open Probdb_dpll
module F = Probdb_boolean.Formula
module W = Probdb_boolean.Brute_wmc
module Circuit = Probdb_kc.Circuit

let probs x = 0.15 +. (0.07 *. float_of_int x)

let x0 = F.var 0
let x1 = F.var 1
let x2 = F.var 2
let x3 = F.var 3

let test_simple_counts () =
  let f = F.conj [ F.disj2 x0 x1; F.disj2 x0 x2; F.disj2 x1 x2 ] in
  let r = Dpll.count ~prob:probs f in
  Test_util.check_float "Eq.(14) probability" (W.probability probs f) r.Dpll.prob;
  Alcotest.(check bool) "made decisions" true (r.Dpll.stats.Dpll.decisions > 0)

let test_trace_is_valid_decision_dnnf () =
  let f =
    F.disj
      [ F.conj [ x0; x1 ]; F.conj [ x2; x3 ]; F.conj [ x0; x3 ] ]
  in
  let r = Dpll.count ~prob:probs f in
  Alcotest.(check bool) "trace valid" true (Result.is_ok (Circuit.check r.Dpll.circuit));
  Alcotest.(check bool) "trace is decision-DNNF or smaller" true
    (Circuit.kind ~order:None r.Dpll.circuit <> Circuit.Extended);
  (* the trace recomputes the same probability *)
  Test_util.check_float "trace wmc" r.Dpll.prob (Circuit.wmc probs r.Dpll.circuit)

let test_components_fire () =
  (* (x0 v x1) ∧ (x2 v x3): var-disjoint conjuncts *)
  let f = F.conj2 (F.disj2 x0 x1) (F.disj2 x2 x3) in
  let r = Dpll.count ~prob:probs f in
  Alcotest.(check bool) "component split" true (r.Dpll.stats.Dpll.component_splits > 0);
  Test_util.check_float "probability" (W.probability probs f) r.Dpll.prob;
  (* without components: more decisions *)
  let r' = Dpll.count ~config:Dpll.fbdd_config ~prob:probs f in
  Alcotest.(check bool) "fbdd mode has no ANDs" true
    (Circuit.kind ~order:None r'.Dpll.circuit = Circuit.Fbdd
    || Circuit.kind ~order:None r'.Dpll.circuit = Circuit.Obdd_like);
  Alcotest.(check bool) "components save decisions" true
    (r.Dpll.stats.Dpll.decisions <= r'.Dpll.stats.Dpll.decisions)

let test_obdd_shaped_trace () =
  let f = F.disj2 (F.conj2 x0 x1) (F.conj2 x2 x3) in
  let order = [ 0; 1; 2; 3 ] in
  let r = Dpll.count ~config:(Dpll.obdd_config order) ~prob:probs f in
  Alcotest.(check bool) "obdd-like trace" true
    (Circuit.kind ~order:(Some order) r.Dpll.circuit = Circuit.Obdd_like);
  Test_util.check_float "probability" (W.probability probs f) r.Dpll.prob

let test_cache_hits () =
  (* a formula with repeated subproblems under conditioning *)
  let f =
    F.conj
      [ F.disj2 x0 x2; F.disj2 x1 x2; F.disj2 x0 x3; F.disj2 x1 x3 ]
  in
  let with_cache = Dpll.count ~prob:probs f in
  let without =
    Dpll.count ~config:{ Dpll.default_config with Dpll.use_cache = false } ~prob:probs f
  in
  Test_util.check_float "same result" with_cache.Dpll.prob without.Dpll.prob;
  Alcotest.(check bool) "cache used" true (with_cache.Dpll.stats.Dpll.cache_hits > 0)

let test_decision_limit () =
  let f = F.conj [ F.disj2 x0 x1; F.disj2 x1 x2; F.disj2 x2 x3 ] in
  match
    Dpll.count ~config:{ Dpll.default_config with Dpll.max_decisions = 1 } ~prob:probs f
  with
  | exception Dpll.Decision_limit 1 -> ()
  | _ -> Alcotest.fail "expected Decision_limit"

let test_independent_or () =
  let f = F.disj2 (F.conj2 x0 x1) (F.conj2 x2 x3) in
  let cfg = { Dpll.default_config with Dpll.independent_or = true } in
  let r = Dpll.count ~config:cfg ~prob:probs f in
  Test_util.check_float "probability with ior" (W.probability probs f) r.Dpll.prob;
  Alcotest.(check bool) "trace beyond decision-DNNF" true
    (Circuit.kind ~order:None r.Dpll.circuit = Circuit.Extended);
  Alcotest.(check bool) "but still a valid trace" true
    (Result.is_ok (Circuit.check r.Dpll.circuit))

let gen_formula =
  QCheck2.Gen.(
    sized_size (int_range 0 8) @@ fix (fun self n ->
        if n = 0 then
          oneof [ return F.tru; return F.fls; map F.var (int_range 0 6) ]
        else
          oneof
            [
              map F.var (int_range 0 6);
              map F.neg (self (n - 1));
              map2 F.conj2 (self (n / 2)) (self (n / 2));
              map2 F.disj2 (self (n / 2)) (self (n / 2));
            ]))

let configs =
  [
    ("default", Dpll.default_config);
    ("fbdd", Dpll.fbdd_config);
    ("obdd", Dpll.obdd_config [ 0; 1; 2; 3; 4; 5; 6 ]);
    ("no-cache", { Dpll.default_config with Dpll.use_cache = false });
    ("ior", { Dpll.default_config with Dpll.independent_or = true });
  ]

let prop_all_configs_agree_with_brute_force =
  Test_util.qcheck ~count:150 "all DPLL configs = brute force" gen_formula (fun f ->
      let expected = W.probability probs f in
      List.for_all
        (fun (_, cfg) ->
          Float.abs (Dpll.probability ~config:cfg ~prob:probs f -. expected) < 1e-9)
        configs)

let prop_trace_wmc_agrees =
  Test_util.qcheck ~count:150 "trace WMC = reported probability" gen_formula (fun f ->
      let r = Dpll.count ~prob:probs f in
      Result.is_ok (Circuit.check r.Dpll.circuit)
      && Float.abs (Circuit.wmc probs r.Dpll.circuit -. r.Dpll.prob) < 1e-9)

let suites =
  [
    ( "dpll",
      [
        Alcotest.test_case "simple counts" `Quick test_simple_counts;
        Alcotest.test_case "trace is valid decision-DNNF" `Quick test_trace_is_valid_decision_dnnf;
        Alcotest.test_case "components fire" `Quick test_components_fire;
        Alcotest.test_case "obdd-shaped trace" `Quick test_obdd_shaped_trace;
        Alcotest.test_case "cache hits" `Quick test_cache_hits;
        Alcotest.test_case "decision limit" `Quick test_decision_limit;
        Alcotest.test_case "independent-or ablation" `Quick test_independent_or;
        prop_all_configs_agree_with_brute_force;
        prop_trace_wmc_agrees;
      ] );
  ]
