open Probdb_boolean
module F = Formula

let x0 = F.var 0
let x1 = F.var 1
let x2 = F.var 2

let test_smart_constructors () =
  Alcotest.(check bool) "and unit" true (F.equal (F.conj [ F.tru; x0 ]) x0);
  Alcotest.(check bool) "and absorbing" true (F.equal (F.conj [ F.fls; x0 ]) F.fls);
  Alcotest.(check bool) "or unit" true (F.equal (F.disj [ F.fls; x0 ]) x0);
  Alcotest.(check bool) "or absorbing" true (F.equal (F.disj [ F.tru; x0 ]) F.tru);
  Alcotest.(check bool) "dedup" true (F.equal (F.conj [ x0; x0 ]) x0);
  Alcotest.(check bool)
    "flatten" true
    (F.equal (F.conj [ x0; F.conj [ x1; x2 ] ]) (F.conj [ x0; x1; x2 ]));
  Alcotest.(check bool)
    "complement detection" true
    (F.equal (F.conj [ x0; F.neg x0 ]) F.fls);
  Alcotest.(check bool)
    "complement in or" true
    (F.equal (F.disj [ x0; F.neg x0 ]) F.tru);
  Alcotest.(check bool) "double negation" true (F.equal (F.neg (F.neg x0)) x0)

let test_eval () =
  let f = F.disj2 (F.conj2 x0 x1) (F.neg x2) in
  let assign l x = List.mem x l in
  Alcotest.(check bool) "sat" true (F.eval (assign [ 0; 1; 2 ]) f);
  Alcotest.(check bool) "sat via neg" true (F.eval (assign []) f);
  Alcotest.(check bool) "unsat" false (F.eval (assign [ 2 ]) f)

let test_condition () =
  let f = F.disj2 (F.conj2 x0 x1) x2 in
  Alcotest.(check bool)
    "condition true" true
    (F.equal (F.condition 0 true f) (F.disj2 x1 x2));
  Alcotest.(check bool) "condition false" true (F.equal (F.condition 0 false f) x2)

let test_counting () =
  (* The running example of the Appendix, Eq. (14): F = (x1 v x2)(x1 v x3)(x2 v x3)
     has 4 models (Fig. 3). *)
  let f =
    F.conj [ F.disj2 x0 x1; F.disj2 x0 x2; F.disj2 x1 x2 ]
  in
  Alcotest.(check int) "models of Eq.(14)" 4 (Brute_wmc.count_models f);
  (* probability at p=1/2 is 4/8 *)
  Test_util.check_float "uniform probability" 0.5 (Brute_wmc.probability (fun _ -> 0.5) f)

let test_weight_vs_probability () =
  (* weight(F)/Z = p(F) when p_i = w_i / (1 + w_i) (Appendix, Eq. (15)/(17)). *)
  let f = F.conj [ F.disj2 x0 x1; F.disj2 x0 x2; F.disj2 x1 x2 ] in
  let w = function 0 -> 0.5 | 1 -> 2.0 | _ -> 3.0 in
  let p x = w x /. (1.0 +. w x) in
  let z = (1.0 +. w 0) *. (1.0 +. w 1) *. (1.0 +. w 2) in
  Test_util.check_float "weight/Z = probability"
    (Brute_wmc.probability p f)
    (Brute_wmc.weight w f /. z)

let test_fig3_weight_table () =
  (* Fig. 3: weight(F) = w2 w3 + w1 w3 + w1 w2 + w1 w2 w3 (the four models). *)
  let f = F.conj [ F.disj2 x0 x1; F.disj2 x0 x2; F.disj2 x1 x2 ] in
  let w1, w2, w3 = (0.7, 1.3, 2.9) in
  let w = function 0 -> w1 | 1 -> w2 | _ -> w3 in
  Test_util.check_float "Fig. 3 weight"
    ((w2 *. w3) +. (w1 *. w3) +. (w1 *. w2) +. (w1 *. w2 *. w3))
    (Brute_wmc.weight w f)

let test_dnf () =
  let f = F.conj2 (F.disj2 x0 x1) x2 in
  Alcotest.(check (list (list int))) "dnf" [ [ 0; 2 ]; [ 1; 2 ] ] (F.to_dnf f);
  let g = F.disj2 x0 (F.conj2 x0 x1) in
  Alcotest.(check (list (list int))) "absorption" [ [ 0 ] ] (F.to_dnf g);
  Alcotest.check_raises "dnf rejects negation"
    (Invalid_argument "Formula.to_dnf: formula is not positive") (fun () ->
      ignore (F.to_dnf (F.neg x0)))

let test_read_once () =
  Alcotest.(check bool) "read-once" true
    (F.is_syntactically_read_once (F.conj2 (F.disj2 x0 x1) x2));
  Alcotest.(check bool) "not read-once" false
    (F.is_syntactically_read_once (F.disj2 (F.conj2 x0 x1) (F.conj2 x0 x2)))

let test_var_pool () =
  let pool = Var_pool.create () in
  let a = Var_pool.intern pool ~prob:0.3 "R(1)" in
  let b = Var_pool.intern pool "S(1,2)" in
  Alcotest.(check int) "same label same id" a (Var_pool.intern pool "R(1)");
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Test_util.check_float "prob stored" 0.3 (Var_pool.prob pool a);
  Test_util.check_float "default prob" 0.5 (Var_pool.prob pool b);
  Alcotest.(check string) "label" "R(1)" (Var_pool.label pool a);
  let c = Var_pool.fresh pool "R(1)" in
  Alcotest.(check bool) "fresh distinct" true (c <> a);
  Alcotest.(check int) "size" 3 (Var_pool.size pool)

(* Random formula generator over variables 0..4. *)
let gen_formula =
  QCheck2.Gen.(
    sized_size (int_range 0 6) @@ fix (fun self n ->
        if n = 0 then
          oneof [ return F.tru; return F.fls; map F.var (int_range 0 4) ]
        else
          oneof
            [
              map F.var (int_range 0 4);
              map F.neg (self (n - 1));
              map2 F.conj2 (self (n / 2)) (self (n / 2));
              map2 F.disj2 (self (n / 2)) (self (n / 2));
            ]))

let gen_positive_formula =
  QCheck2.Gen.(
    sized_size (int_range 0 6) @@ fix (fun self n ->
        if n = 0 then
          oneof [ return F.tru; return F.fls; map F.var (int_range 0 4) ]
        else
          oneof
            [
              map F.var (int_range 0 4);
              map2 F.conj2 (self (n / 2)) (self (n / 2));
              map2 F.disj2 (self (n / 2)) (self (n / 2));
            ]))

let random_assignment seed x = (seed lsr (x mod 30)) land 1 = 1

let prop_nnf_preserves_semantics =
  Test_util.qcheck "nnf preserves semantics"
    QCheck2.Gen.(pair gen_formula (int_bound 1_000_000))
    (fun (f, seed) ->
      let a = random_assignment seed in
      F.eval a f = F.eval a (F.nnf f))

let prop_condition_agrees_with_eval =
  Test_util.qcheck "conditioning agrees with eval"
    QCheck2.Gen.(triple gen_formula (int_bound 4) (pair bool (int_bound 1_000_000)))
    (fun (f, x, (b, seed)) ->
      let a y = if y = x then b else random_assignment seed y in
      F.eval a f = F.eval a (F.condition x b f))

let prop_shannon_expansion =
  (* Eq. (11) of the paper on the brute-force counter. *)
  Test_util.qcheck "Shannon expansion"
    QCheck2.Gen.(pair gen_formula (int_bound 4))
    (fun (f, x) ->
      let p y = 0.2 +. (0.1 *. float_of_int y) in
      let lhs = Brute_wmc.probability p f in
      (* enumerate over the same variable set on both sides: condition may
         drop variables, so compare against a version with x pinned. *)
      let f0 = F.condition x false f in
      let f1 = F.condition x true f in
      let margin g =
        (* probability over vars(f) \ {x} is insensitive to extra vars *)
        Brute_wmc.probability p g
      in
      let rhs = (margin f0 *. (1.0 -. p x)) +. (margin f1 *. p x) in
      Float.abs (lhs -. rhs) < 1e-9)

let prop_dnf_equivalent =
  Test_util.qcheck "to_dnf preserves semantics"
    QCheck2.Gen.(pair gen_positive_formula (int_bound 1_000_000))
    (fun (f, seed) ->
      let a = random_assignment seed in
      let dnf = F.to_dnf f in
      let dnf_true = List.exists (List.for_all a) dnf in
      F.eval a f = dnf_true)

let prop_key_identifies_formula =
  Test_util.qcheck "to_key injective on normalised forms"
    QCheck2.Gen.(pair gen_formula gen_formula)
    (fun (f, g) ->
      if F.equal f g then String.equal (F.to_key f) (F.to_key g)
      else not (String.equal (F.to_key f) (F.to_key g)))

let prop_demorgan =
  Test_util.qcheck "De Morgan via nnf"
    QCheck2.Gen.(pair gen_formula (int_bound 1_000_000))
    (fun (f, seed) ->
      let a = random_assignment seed in
      F.eval a (F.nnf (F.neg f)) = not (F.eval a f))

let suites =
  [
    ( "boolean",
      [
        Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
        Alcotest.test_case "eval" `Quick test_eval;
        Alcotest.test_case "condition" `Quick test_condition;
        Alcotest.test_case "counting Eq.(14)" `Quick test_counting;
        Alcotest.test_case "weights vs probabilities" `Quick test_weight_vs_probability;
        Alcotest.test_case "Fig. 3 weight table" `Quick test_fig3_weight_table;
        Alcotest.test_case "dnf" `Quick test_dnf;
        Alcotest.test_case "read-once detection" `Quick test_read_once;
        Alcotest.test_case "var pool" `Quick test_var_pool;
        prop_nnf_preserves_semantics;
        prop_condition_agrees_with_eval;
        prop_shannon_expansion;
        prop_dnf_equivalent;
        prop_key_identifies_formula;
        prop_demorgan;
      ] );
  ]
