module Core = Probdb_core
module L = Probdb_logic
module E = Probdb_engine.Engine
module Q = Probdb_workload.Queries
module Gen = Probdb_workload.Gen

let db_for q ~seed ~domain_size =
  let specs =
    List.map (fun (name, arity) -> Gen.spec ~density:0.7 name arity) (L.Fo.relations q)
  in
  Gen.random_tid ~seed ~domain_size specs

let test_safe_queries_use_lifted () =
  List.iter
    (fun (e : Q.entry) ->
      if e.Q.expected = Q.Ptime then begin
        let db = db_for e.Q.query ~seed:3 ~domain_size:2 in
        let r = E.evaluate db e.Q.query in
        Alcotest.(check string)
          (Printf.sprintf "%s via lifted" e.Q.name)
          "lifted"
          (E.strategy_name r.E.strategy);
        Test_util.check_float e.Q.name
          (L.Brute_force.probability db e.Q.query)
          (E.value r.E.outcome)
      end)
    Q.all

let test_hard_queries_fall_to_grounded () =
  (* complete bipartite H0 instance: the lineage contains the triangle
     pattern, so even read-once factorisation refuses *)
  let db = Gen.h0_db ~seed:5 ~n:3 () in
  let r = E.evaluate db Q.h0.Q.query in
  (* lifted and safe-plan must be skipped, an exact grounded method wins *)
  Alcotest.(check bool) "lifted skipped" true
    (List.mem_assoc E.Lifted r.E.skipped);
  Alcotest.(check bool) "safe plan skipped" true
    (List.mem_assoc E.Safe_plan r.E.skipped);
  Alcotest.(check string) "OBDD answers" "obdd" (E.strategy_name r.E.strategy);
  Test_util.check_float "exact value"
    (L.Brute_force.probability db Q.h0.Q.query)
    (E.value r.E.outcome)

let test_budget_falls_to_sampling () =
  (* a larger H0 instance with tiny exact budgets must end at Karp-Luby *)
  let db = Gen.h0_db ~seed:2 ~n:10 () in
  let config =
    { E.default_config with E.obdd_max_nodes = 10; E.dpll_max_decisions = 10;
      E.max_enum_support = 5; E.kl_samples = 60_000 }
  in
  let r = E.evaluate ~config db Q.h0.Q.query in
  Alcotest.(check string) "karp-luby answers" "karp-luby" (E.strategy_name r.E.strategy);
  match r.E.outcome with
  | E.Approximate { std_error; _ } -> Alcotest.(check bool) "se positive" true (std_error > 0.0)
  | E.Exact _ -> Alcotest.fail "expected an approximate outcome"

let test_no_method () =
  let db = Gen.h0_db ~seed:2 ~n:10 () in
  let config =
    { E.default_config with
      E.strategies = [ E.Lifted; E.Obdd ]; E.obdd_max_nodes = 10 }
  in
  match E.evaluate ~config db Q.h0.Q.query with
  | exception E.No_method skipped -> Alcotest.(check int) "two reasons" 2 (List.length skipped)
  | _ -> Alcotest.fail "expected No_method"

let test_safe_plan_strategy () =
  (* with lifted disabled, hierarchical CQs answer via a safe plan *)
  let db = db_for Q.q_hier.Q.query ~seed:8 ~domain_size:3 in
  let config = { E.default_config with E.strategies = [ E.Safe_plan; E.Dpll ] } in
  let r = E.evaluate ~config db Q.q_hier.Q.query in
  Alcotest.(check string) "safe-plan answers" "safe-plan" (E.strategy_name r.E.strategy);
  Test_util.check_float "exact"
    (L.Brute_force.probability db Q.q_hier.Q.query)
    (E.value r.E.outcome)

let test_all_exact_strategies_agree () =
  let db = db_for Q.q_j.Q.query ~seed:12 ~domain_size:2 in
  let truth = L.Brute_force.probability db Q.q_j.Q.query in
  List.iter
    (fun s ->
      let config = { E.default_config with E.strategies = [ s ] } in
      let r = E.evaluate ~config db Q.q_j.Q.query in
      Test_util.check_float (E.strategy_name s) truth (E.value r.E.outcome))
    [ E.Lifted; E.Obdd; E.Dpll; E.World_enum ]

let test_general_fo_via_grounding () =
  (* sentences outside the unate ∃*/∀* fragment still evaluate *)
  let db = db_for (L.Parser.parse_sentence "forall x. exists y. S(x,y)") ~seed:4 ~domain_size:3 in
  let q = L.Parser.parse_sentence "forall x. exists y. S(x,y)" in
  let r = E.evaluate db q in
  Alcotest.(check bool) "lifted skipped (fragment)" true (List.mem_assoc E.Lifted r.E.skipped);
  Test_util.check_float "grounded exact" (L.Brute_force.probability db q) (E.value r.E.outcome)

let test_ranking_limited_query_still_answers () =
  let e = Q.self_join_symmetric in
  let db = db_for e.Q.query ~seed:6 ~domain_size:3 in
  let r = E.evaluate db e.Q.query in
  Alcotest.(check bool) "lifted rejected it" true (List.mem_assoc E.Lifted r.E.skipped);
  Test_util.check_float "grounded exact"
    (L.Brute_force.probability db e.Q.query)
    (E.value r.E.outcome)

let test_symmetric_strategy () =
  (* a materialised symmetric database lets the engine answer #P-hard H0
     exactly via the FO² cell algorithm (Thm. 8.1) *)
  let sym = Probdb_symmetric.Sym_db.make ~n:3 [ ("R", 1, 0.3); ("S", 2, 0.7); ("T", 1, 0.5) ] in
  let db = Probdb_symmetric.Sym_db.to_tid sym in
  let r = E.evaluate db Q.h0_forall.Q.query in
  Alcotest.(check string) "symmetric answers" "symmetric" (E.strategy_name r.E.strategy);
  Alcotest.(check bool) "lifted was skipped" true (List.mem_assoc E.Lifted r.E.skipped);
  Test_util.check_float "exact"
    (L.Brute_force.probability db Q.h0_forall.Q.query)
    (E.value r.E.outcome);
  (* a non-symmetric db skips the strategy *)
  let db2 = db_for Q.h0.Q.query ~seed:3 ~domain_size:2 in
  let r2 = E.evaluate db2 Q.h0.Q.query in
  Alcotest.(check bool) "skipped on asymmetric db" true
    (List.mem_assoc E.Symmetric r2.E.skipped)

let test_read_once_strategy () =
  (* with everything cheaper disabled, hierarchical lineages answer via
     read-once factorisation in linear time *)
  let db = db_for Q.q_hier.Q.query ~seed:9 ~domain_size:3 in
  let config = { E.default_config with E.strategies = [ E.Read_once; E.Dpll ] } in
  let r = E.evaluate ~config db Q.q_hier.Q.query in
  Alcotest.(check string) "read-once answers" "read-once" (E.strategy_name r.E.strategy);
  Test_util.check_float "exact"
    (L.Brute_force.probability db Q.q_hier.Q.query)
    (E.value r.E.outcome);
  (* H0's lineage is not read-once *)
  let db2 = db_for Q.h0.Q.query ~seed:9 ~domain_size:3 in
  let r2 = E.evaluate ~config db2 Q.h0.Q.query in
  Alcotest.(check string) "falls through to dpll" "dpll" (E.strategy_name r2.E.strategy);
  Alcotest.(check bool) "read-once skipped" true (List.mem_assoc E.Read_once r2.E.skipped)

let test_answers () =
  let t xs = List.map Core.Value.int xs in
  let r = Core.Relation.of_list "R" [ (t [ 1 ], 0.3); (t [ 2 ], 0.9) ] in
  let s = Core.Relation.of_list "S" [ (t [ 1; 2 ], 0.5); (t [ 2; 2 ], 1.0) ] in
  let db = Core.Tid.make [ r; s ] in
  let q = L.Parser.parse ~free:[ "x" ] "exists y. R(x) && S(x,y)" in
  let results = E.answers ~free:[ "x" ] db q in
  Alcotest.(check int) "two answers" 2 (List.length results);
  List.iter
    (fun (binding, report) ->
      let expected =
        List.assoc binding (L.Brute_force.answers db ~free:[ "x" ] q)
      in
      Test_util.check_float "answer" expected (E.value report.E.outcome))
    results

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_expected_answer_count () =
  let t xs = List.map Core.Value.int xs in
  let r = Core.Relation.of_list "R" [ (t [ 1 ], 0.3); (t [ 2 ], 0.9) ] in
  let db = Core.Tid.make [ r ] in
  let q = L.Parser.parse ~free:[ "x" ] "R(x)" in
  (* E[#answers] = sum of marginals by linearity *)
  Test_util.check_float "linearity of expectation" 1.2
    (E.expected_answer_count ~free:[ "x" ] db q);
  (* agrees with direct expectation over worlds *)
  let direct =
    Core.Worlds.expectation db (fun w ->
        float_of_int (List.length (Core.World.tuples_of w "R")))
  in
  Test_util.check_float "matches world expectation" direct
    (E.expected_answer_count ~free:[ "x" ] db q)

let test_report_printing () =
  let db = Gen.h0_db ~seed:5 ~n:2 () in
  let r = E.evaluate db Q.h0.Q.query in
  let s = Format.asprintf "%a" E.pp_report r in
  Alcotest.(check bool) "mentions strategy" true (contains s "obdd");
  Alcotest.(check bool) "mentions skipped lifted" true (contains s "lifted skipped")

(* property: engine = brute force on random TIDs across the zoo *)
let prop_engine_matches_brute_force =
  Test_util.qcheck ~count:40 "engine exact = brute force (zoo x random TIDs)"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      List.for_all
        (fun (e : Q.entry) ->
          let db = db_for e.Q.query ~seed ~domain_size:2 in
          let r = E.evaluate ~config:E.exact_only db e.Q.query in
          let truth = L.Brute_force.probability db e.Q.query in
          Float.abs (E.value r.E.outcome -. truth) < 1e-9)
        Q.all)

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "safe queries use lifted" `Quick test_safe_queries_use_lifted;
        Alcotest.test_case "hard queries fall to grounded" `Quick test_hard_queries_fall_to_grounded;
        Alcotest.test_case "budgets fall to sampling" `Quick test_budget_falls_to_sampling;
        Alcotest.test_case "no method" `Quick test_no_method;
        Alcotest.test_case "safe-plan strategy" `Quick test_safe_plan_strategy;
        Alcotest.test_case "exact strategies agree" `Quick test_all_exact_strategies_agree;
        Alcotest.test_case "general FO via grounding" `Quick test_general_fo_via_grounding;
        Alcotest.test_case "beyond-rules query still answers" `Quick test_ranking_limited_query_still_answers;
        Alcotest.test_case "symmetric strategy" `Quick test_symmetric_strategy;
        Alcotest.test_case "read-once strategy" `Quick test_read_once_strategy;
        Alcotest.test_case "non-Boolean answers" `Quick test_answers;
        Alcotest.test_case "expected answer count" `Quick test_expected_answer_count;
        Alcotest.test_case "report printing" `Quick test_report_printing;
        prop_engine_matches_brute_force;
      ] );
  ]
