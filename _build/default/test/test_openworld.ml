module Core = Probdb_core
module L = Probdb_logic
module O = Probdb_openworld.Open_db

let t xs = List.map Core.Value.int xs
let parse_s = L.Parser.parse_sentence

let small_db () =
  Core.Tid.make
    ~domain:(List.map Core.Value.int [ 0; 1; 2 ])
    [
      Core.Relation.of_list "R" [ (t [ 0 ], 0.5); (t [ 1 ], 0.5) ];
      Core.Relation.of_list "S" [ (t [ 0; 1 ], 0.6) ];
    ]

let test_completion () =
  let ow = O.make ~lambda:0.2 ~open_relations:[ ("S", 2) ] (small_db ()) in
  let c = O.completion ow in
  Alcotest.(check int) "S completed to 9 tuples" 9
    (Core.Relation.cardinal (Core.Tid.relation c "S"));
  Test_util.check_float "listed tuple keeps prob" 0.6 (Core.Tid.prob c "S" (t [ 0; 1 ]));
  Test_util.check_float "unlisted tuple gets lambda" 0.2 (Core.Tid.prob c "S" (t [ 2; 2 ]));
  (* closed relations untouched *)
  Alcotest.(check int) "R untouched" 2 (Core.Relation.cardinal (Core.Tid.relation c "R"))

let test_interval_monotone () =
  let ow = O.make ~lambda:0.2 ~open_relations:[ ("S", 2) ] (small_db ()) in
  let q = parse_s "exists x y. R(x) && S(x,y)" in
  let iv = O.probability_interval ow q in
  (* lower = closed world, upper = full completion *)
  Test_util.check_float "lower = closed world" (L.Brute_force.probability (small_db ()) q) iv.O.lower;
  Test_util.check_float "upper = completion"
    (L.Brute_force.probability (O.completion ow) q)
    iv.O.upper;
  Alcotest.(check bool) "lower <= upper" true (iv.O.lower <= iv.O.upper);
  Alcotest.(check bool) "open world strictly wider" true (iv.O.upper > iv.O.lower)

let test_interval_negative_polarity () =
  (* for a universally quantified (negative-polarity) open relation the
     completion is the *lower* end *)
  let ow = O.make ~lambda:0.2 ~open_relations:[ ("S", 2) ] (small_db ()) in
  let q = parse_s "forall x y. S(x,y) => R(x)" in
  let iv = O.probability_interval ow q in
  Test_util.check_float "upper = closed world"
    (L.Brute_force.probability (small_db ()) q)
    iv.O.upper;
  Test_util.check_float "lower = completion"
    (L.Brute_force.probability (O.completion ow) q)
    iv.O.lower

let test_lambda_zero_collapses () =
  let ow = O.make ~lambda:0.0 ~open_relations:[ ("S", 2) ] (small_db ()) in
  let q = parse_s "exists x y. R(x) && S(x,y)" in
  let iv = O.probability_interval ow q in
  Test_util.check_float "width 0 at lambda 0" iv.O.lower iv.O.upper

let test_absent_relation_opens () =
  let db = Core.Tid.make ~domain:(List.map Core.Value.int [ 0; 1 ])
      [ Core.Relation.of_list "R" [ (t [ 0 ], 0.9) ] ] in
  let ow = O.make ~lambda:0.3 ~open_relations:[ ("T", 1) ] db in
  let q = parse_s "exists x. R(x) && T(x)" in
  let iv = O.probability_interval ow q in
  Test_util.check_float "closed lower is 0" 0.0 iv.O.lower;
  Alcotest.(check bool) "open upper is positive" true (iv.O.upper > 0.0)

let test_rejects_mixed_polarity () =
  let ow = O.make ~open_relations:[ ("S", 2) ] (small_db ()) in
  let q = parse_s "(exists x y. S(x,y)) && (forall x y. S(x,y) => R(x))" in
  match O.probability_interval ow q with
  | exception L.Ucq.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported on mixed polarity"

let test_rejects_bad_lambda () =
  Alcotest.check_raises "lambda > 1" (Invalid_argument "Open_db.make: lambda outside [0,1]")
    (fun () -> ignore (O.make ~lambda:1.5 ~open_relations:[] (small_db ())))

(* Property: the interval brackets every individual λ-completion obtained
   by listing a random subset of unlisted tuples at random probabilities
   ≤ λ. *)
let prop_interval_brackets_completions =
  Test_util.qcheck ~count:80 "interval brackets random completions"
    QCheck2.Gen.(pair (int_range 1 1000) (float_bound_inclusive 0.3))
    (fun (seed, lambda) ->
      let db = small_db () in
      let ow = O.make ~lambda ~open_relations:[ ("S", 2) ] db in
      let q = parse_s "exists x y. R(x) && S(x,y)" in
      let iv = O.probability_interval ow q in
      (* random completion *)
      let rng = Random.State.make [| seed |] in
      let dom = Core.Tid.domain db in
      let extra =
        List.concat_map
          (fun a -> List.map (fun b -> [ a; b ]) dom)
          dom
        |> List.filter (fun tu -> not (Core.Relation.mem (Core.Tid.relation db "S") tu))
        |> List.filter_map (fun tu ->
               if Random.State.bool rng then
                 Some (tu, Random.State.float rng lambda)
               else None)
      in
      let s' =
        Core.Relation.make
          (Core.Schema.of_arity "S" 2)
          (Core.Relation.rows (Core.Tid.relation db "S") @ extra)
      in
      let db' = Core.Tid.replace_relation db s' in
      let p = L.Brute_force.probability db' q in
      iv.O.lower -. 1e-9 <= p && p <= iv.O.upper +. 1e-9)

let suites =
  [
    ( "openworld",
      [
        Alcotest.test_case "completion" `Quick test_completion;
        Alcotest.test_case "interval for monotone query" `Quick test_interval_monotone;
        Alcotest.test_case "negative polarity flips ends" `Quick test_interval_negative_polarity;
        Alcotest.test_case "lambda 0 collapses" `Quick test_lambda_zero_collapses;
        Alcotest.test_case "absent relation opens" `Quick test_absent_relation_opens;
        Alcotest.test_case "mixed polarity rejected" `Quick test_rejects_mixed_polarity;
        Alcotest.test_case "bad lambda rejected" `Quick test_rejects_bad_lambda;
        prop_interval_brackets_completions;
      ] );
  ]
