open Probdb_core

let v = Value.int
let t xs = Tuple.of_ints xs

let test_value_order () =
  Alcotest.(check bool) "int < str" true (Value.compare (Value.Int 5) (Value.Str "a") < 0);
  Alcotest.(check bool) "roundtrip int" true (Value.equal (Value.of_string "42") (v 42));
  Alcotest.(check bool) "roundtrip bool" true (Value.equal (Value.of_string "true") (Value.Bool true));
  Alcotest.(check bool) "roundtrip str" true (Value.equal (Value.of_string "a1") (Value.str "a1"));
  Alcotest.(check string) "print" "7" (Value.to_string (v 7))

let test_tuple_basics () =
  Alcotest.(check int) "arity" 3 (Tuple.arity (t [ 1; 2; 3 ]));
  Alcotest.(check bool) "equal" true (Tuple.equal (t [ 1; 2 ]) (t [ 1; 2 ]));
  Alcotest.(check bool) "order" true (Tuple.compare (t [ 1; 2 ]) (t [ 1; 3 ]) < 0);
  Alcotest.(check string) "print" "(1, 2)" (Tuple.to_string (t [ 1; 2 ]))

let test_relation_basics () =
  let r = Relation.of_list "R" [ (t [ 1 ], 0.4); (t [ 2 ], 0.9) ] in
  Alcotest.(check int) "cardinal" 2 (Relation.cardinal r);
  Test_util.check_float "prob listed" 0.4 (Relation.prob r (t [ 1 ]));
  Test_util.check_float "prob unlisted" 0.0 (Relation.prob r (t [ 3 ]));
  Alcotest.(check bool) "mem" true (Relation.mem r (t [ 2 ]));
  Alcotest.(check bool) "standard" true (Relation.is_standard r);
  let r' = Relation.map_probs (fun _ p -> p +. 1.0) r in
  Alcotest.(check bool) "nonstandard after shift" false (Relation.is_standard r')

let test_relation_errors () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.make: tuple (1, 2) has arity 2, expected 1 in R")
    (fun () -> ignore (Relation.make (Schema.of_arity "R" 1) [ (t [ 1; 2 ], 0.5) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Relation.make: duplicate tuple (1) in R") (fun () ->
      ignore (Relation.make (Schema.of_arity "R" 1) [ (t [ 1 ], 0.5); (t [ 1 ], 0.6) ]))

let test_tid_basics () =
  let r = Relation.of_list "R" [ (t [ 1 ], 0.4) ] in
  let s = Relation.of_list "S" [ (t [ 1; 2 ], 0.5); (t [ 3; 4 ], 0.6) ] in
  let db = Tid.make [ r; s ] in
  Alcotest.(check int) "domain size" 4 (Tid.domain_size db);
  Alcotest.(check int) "support" 3 (Tid.support_size db);
  Test_util.check_float "prob" 0.5 (Tid.prob db "S" (t [ 1; 2 ]));
  Test_util.check_float "missing rel" 0.0 (Tid.prob db "T" (t [ 1 ]));
  let db' = Tid.make ~domain:[ v 9 ] [ r ] in
  Alcotest.(check int) "declared domain" 2 (Tid.domain_size db')

let test_worlds_sum_to_one () =
  let db = Test_util.fig1_tid () in
  let total = Worlds.fold (fun _ p acc -> acc +. p) 0.0 db in
  Test_util.check_float "sum of world probs" 1.0 total;
  Alcotest.(check int) "count" 512 (Worlds.count db)

let test_worlds_marginal () =
  (* Recover a tuple marginal from the world distribution (Eq. (2)). *)
  let db = Test_util.fig1_tid () in
  let tuple = [ Value.str "a2" ] in
  let p = Worlds.probability db (fun w -> World.mem w "R" tuple) in
  Test_util.check_float "marginal of R(a2)" 0.6 p

let test_worlds_expectation () =
  let db =
    Tid.make [ Relation.of_list "R" [ (t [ 1 ], 0.25); (t [ 2 ], 0.75) ] ]
  in
  let expected_size = Worlds.expectation db (fun w -> float_of_int (World.cardinal w)) in
  Test_util.check_float "E[|W|] is sum of marginals" 1.0 expected_size

let test_worlds_too_large () =
  let rows = List.init 30 (fun i -> (t [ i ], 0.5)) in
  let db = Tid.make [ Relation.of_list "R" rows ] in
  Alcotest.check_raises "refuses big support" (Worlds.Too_large 30) (fun () ->
      ignore (Worlds.probability db (fun _ -> true)))

let test_world_ops () =
  let w = World.of_facts [ ("R", t [ 1 ]); ("S", t [ 1; 2 ]) ] in
  Alcotest.(check bool) "mem" true (World.mem w "R" (t [ 1 ]));
  Alcotest.(check bool) "not mem" false (World.mem w "R" (t [ 2 ]));
  Alcotest.(check int) "cardinal" 2 (World.cardinal w);
  Alcotest.(check int) "tuples_of" 1 (List.length (World.tuples_of w "S"));
  let w' = World.remove ("R", t [ 1 ]) w in
  Alcotest.(check int) "after remove" 1 (World.cardinal w')

let test_ra_join () =
  let r = Relation.make (Schema.make "R" [ "x" ]) [ (t [ 1 ], 0.5); (t [ 2 ], 0.5) ] in
  let s =
    Relation.make (Schema.make "S" [ "x"; "y" ])
      [ (t [ 1; 10 ], 0.4); (t [ 1; 11 ], 0.3); (t [ 3; 12 ], 0.9) ]
  in
  let j = Ra.natural_join r s in
  Alcotest.(check int) "join rows" 2 (Relation.cardinal j);
  Test_util.check_float "join prob multiplies" (0.5 *. 0.4) (Relation.prob j (t [ 1; 10 ]))

let test_ra_project_select () =
  let s =
    Relation.make (Schema.make "S" [ "x"; "y" ])
      [ (t [ 1; 10 ], 0.4); (t [ 1; 11 ], 0.3); (t [ 2; 12 ], 0.9) ]
  in
  let px = Ra.project [ "x" ] s in
  Alcotest.(check int) "distinct x" 2 (Relation.cardinal px);
  let sel = Ra.select_eq "x" (v 1) s in
  Alcotest.(check int) "selected" 2 (Relation.cardinal sel);
  let renamed = Ra.rename "S2" [ ("x", "z") ] s in
  Alcotest.(check string) "renamed rel" "S2" (Relation.name renamed);
  Alcotest.(check int) "rename keeps rows" 3 (Relation.cardinal renamed)

let test_ra_union_difference () =
  let mk rows = Relation.make (Schema.make "R" [ "x" ]) rows in
  let r1 = mk [ (t [ 1 ], 0.5); (t [ 2 ], 0.5) ] in
  let r2 = mk [ (t [ 2 ], 0.5); (t [ 3 ], 0.5) ] in
  let u = Ra.union r1 r2 in
  Alcotest.(check int) "union rows" 3 (Relation.cardinal u);
  Test_util.check_float "union combines" 0.75 (Relation.prob u (t [ 2 ]));
  let d = Ra.difference r1 r2 in
  Alcotest.(check int) "difference rows" 1 (Relation.cardinal d)

let test_csv_roundtrip () =
  let db = Test_util.fig1_tid () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "probdb_csv_test" in
  Csv_io.save_dir dir db;
  let db' = Csv_io.load_dir dir in
  Alcotest.(check int) "relations" 2 (List.length (Tid.relations db'));
  Alcotest.(check int) "support" (Tid.support_size db) (Tid.support_size db');
  List.iter
    (fun (r, tup, p) -> Test_util.check_float "prob preserved" p (Tid.prob db' r tup))
    (Tid.support db)

(* Property: world probabilities of a random TID sum to 1. *)
let gen_small_tid =
  QCheck2.Gen.(
    let prob = float_bound_inclusive 1.0 in
    let* n_r = int_range 0 4 in
    let* n_s = int_range 0 4 in
    let* r_rows =
      flatten_l
        (List.init n_r (fun i ->
             let+ p = prob in
             (t [ i ], p)))
    in
    let+ s_rows =
      flatten_l
        (List.init n_s (fun i ->
             let+ p = prob in
             (t [ i; i + 1 ], p)))
    in
    let rels = [] in
    let rels = if r_rows = [] then rels else Relation.of_list "R" r_rows :: rels in
    let rels = if s_rows = [] then rels else Relation.of_list "S" s_rows :: rels in
    Tid.make rels)

let prop_world_probs_sum_to_one =
  Test_util.qcheck "world probabilities sum to 1" gen_small_tid (fun db ->
      let total = Worlds.fold (fun _ p acc -> acc +. p) 0.0 db in
      Float.abs (total -. 1.0) < 1e-9)

let prop_marginals_recovered =
  Test_util.qcheck "marginals recovered from worlds" gen_small_tid (fun db ->
      List.for_all
        (fun (r, tup, p) ->
          let q = Worlds.probability db (fun w -> World.mem w r tup) in
          Float.abs (p -. q) < 1e-9)
        (Tid.support db))

(* ---------- BID tables ---------- *)

let sensor_bid () =
  (* Sensor(id, reading): each sensor reports at most one reading *)
  Bid.make (Schema.make "Sensor" [ "id"; "reading" ]) ~key_arity:1
    [
      { Bid.key = t [ 1 ]; options = [ (t [ 40 ], 0.2); (t [ 41 ], 0.5); (t [ 42 ], 0.3) ] };
      { Bid.key = t [ 2 ]; options = [ (t [ 10 ], 0.6) ] };
    ]

let test_bid_basics () =
  let b = sensor_bid () in
  Alcotest.(check int) "blocks" 2 (Bid.block_count b);
  Test_util.check_float "tuple prob" 0.5 (Bid.tuple_prob b (t [ 1; 41 ]));
  Test_util.check_float "missing option" 0.0 (Bid.tuple_prob b (t [ 1; 99 ]));
  Test_util.check_float "expected size" (1.0 +. 0.6) (Bid.expected_size b)

let test_bid_validation () =
  let schema = Schema.make "Sensor" [ "id"; "reading" ] in
  (match
     Bid.make schema ~key_arity:1
       [ { Bid.key = t [ 1 ]; options = [ (t [ 40 ], 0.7); (t [ 41 ], 0.7) ] } ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probabilities summing over 1 accepted");
  match
    Bid.make schema ~key_arity:1
      [ { Bid.key = t [ 1 ]; options = [] }; { Bid.key = t [ 1 ]; options = [] } ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate keys accepted"

let test_bid_worlds () =
  let b = sensor_bid () in
  (* exhaustive semantics: disjoint within a block, independent across *)
  let total = Bid.fold_worlds (fun _ p acc -> acc +. p) 0.0 "Sensor" b in
  Test_util.check_float "worlds sum to 1" 1.0 total;
  (* disjointness: the two blocks never produce more than 2 tuples *)
  let two_readings w = List.length (World.tuples_of w "bid") > 2 in
  Test_util.check_float "never > 2 tuples" 0.0 (Bid.probability b two_readings);
  (* P(sensor 1 reads >= 41 AND sensor 2 present) = (0.5+0.3) * 0.6 *)
  let q w = (World.mem w "bid" (t [ 1; 41 ]) || World.mem w "bid" (t [ 1; 42 ])) && World.mem w "bid" (t [ 2; 10 ]) in
  Test_util.check_float "joint event" (0.8 *. 0.6) (Bid.probability b q)

let test_bid_vs_independent_approximation () =
  let b = sensor_bid () in
  (* under BID semantics readings 41 and 42 are disjoint; the independent
     approximation (TID of the marginals) disagrees on their conjunction *)
  let both w = World.mem w "bid" (t [ 1; 41 ]) && World.mem w "bid" (t [ 1; 42 ]) in
  Test_util.check_float "disjoint in BID" 0.0 (Bid.probability b both);
  let tid = Tid.make [ Bid.to_tid_relation b ] in
  let p_indep =
    Worlds.probability tid (fun w ->
        World.mem w "Sensor" (t [ 1; 41 ]) && World.mem w "Sensor" (t [ 1; 42 ]))
  in
  Test_util.check_float "independent approximation differs" (0.5 *. 0.3) p_indep

let test_bid_roundtrip () =
  let b = sensor_bid () in
  let rel = Bid.to_tid_relation b in
  let b' = Bid.of_tid_relation rel ~key_arity:1 in
  Alcotest.(check int) "blocks preserved" (Bid.block_count b) (Bid.block_count b');
  List.iter
    (fun (tuple, p) -> Test_util.check_float "marginal preserved" p (Bid.tuple_prob b' tuple))
    (Relation.rows rel)

let suites =
  [
    ( "core",
      [
        Alcotest.test_case "value order and parsing" `Quick test_value_order;
        Alcotest.test_case "tuple basics" `Quick test_tuple_basics;
        Alcotest.test_case "relation basics" `Quick test_relation_basics;
        Alcotest.test_case "relation errors" `Quick test_relation_errors;
        Alcotest.test_case "tid basics" `Quick test_tid_basics;
        Alcotest.test_case "worlds sum to one" `Quick test_worlds_sum_to_one;
        Alcotest.test_case "worlds marginal" `Quick test_worlds_marginal;
        Alcotest.test_case "worlds expectation" `Quick test_worlds_expectation;
        Alcotest.test_case "worlds too large" `Quick test_worlds_too_large;
        Alcotest.test_case "world operations" `Quick test_world_ops;
        Alcotest.test_case "ra join" `Quick test_ra_join;
        Alcotest.test_case "ra project/select/rename" `Quick test_ra_project_select;
        Alcotest.test_case "ra union/difference" `Quick test_ra_union_difference;
        Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
        Alcotest.test_case "bid basics" `Quick test_bid_basics;
        Alcotest.test_case "bid validation" `Quick test_bid_validation;
        Alcotest.test_case "bid world semantics" `Quick test_bid_worlds;
        Alcotest.test_case "bid vs independent approximation" `Quick
          test_bid_vs_independent_approximation;
        Alcotest.test_case "bid roundtrip" `Quick test_bid_roundtrip;
        prop_world_probs_sum_to_one;
        prop_marginals_recovered;
      ] );
  ]
