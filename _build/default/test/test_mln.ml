module Core = Probdb_core
module L = Probdb_logic
module Mln = Probdb_mln.Mln
module Factors = Probdb_mln.Factors
module F = Probdb_boolean.Formula

let domain2 = [ Core.Value.str "p1"; Core.Value.str "p2" ]

let parse = L.Parser.parse
let parse_s = L.Parser.parse_sentence

(* ---------- predicate-level MLN ---------- *)

let test_groundings () =
  let mln = Mln.manager_example in
  match mln with
  | [ s ] ->
      let g = Mln.groundings ~domain:domain2 s in
      Alcotest.(check int) "2x2 groundings" 4 (List.length g);
      List.iter (fun (w, f) ->
          Test_util.check_float "weight" 3.9 w;
          Alcotest.(check bool) "ground" true (L.Fo.is_sentence f)) g
  | _ -> Alcotest.fail "unexpected example shape"

let test_world_weight () =
  let mln = Mln.manager_example in
  (* empty world satisfies all 4 groundings (implication vacuously true) *)
  Test_util.check_float "empty world" (3.9 ** 4.0)
    (Mln.world_weight ~domain:domain2 mln Core.World.empty);
  (* Manager(p1,p2) present without HighlyCompensated(p1): one grounding
     fails *)
  let w = Core.World.of_facts [ ("Manager", [ List.nth domain2 0; List.nth domain2 1 ]) ] in
  Test_util.check_float "one violated" (3.9 ** 3.0) (Mln.world_weight ~domain:domain2 mln w)

let test_partition_function_no_factor () =
  (* an MLN whose constraint is a tautology: Z = w^G * 2^|Tup| *)
  let mln = [ Mln.soft 2.0 (parse ~free:[ "x" ] "R(x) || !R(x)") ] in
  let z = Mln.partition_function ~domain:domain2 mln in
  (* |Tup| = 2 (R over domain of 2), each world satisfies both groundings *)
  Test_util.check_float "Z" (4.0 *. (2.0 ** 2.0)) z

let test_mln_monotonicity () =
  (* more managed employees raise P(HighlyCompensated) (the paper's
     narrative about example (5)) *)
  let mln = Mln.manager_example in
  let q = parse_s "HighlyCompensated(p1)" in
  let base = Mln.probability ~domain:domain2 mln q in
  let mln_with_evidence =
    (* add near-hard evidence that p1 manages p2 *)
    Mln.soft 1000.0 (parse "Manager(p1,p2)") :: mln
  in
  let boosted = Mln.probability ~domain:domain2 mln_with_evidence q in
  Alcotest.(check bool) "prior above 1/2" true (base > 0.5);
  Alcotest.(check bool) "evidence boosts" true (boosted > base)

let prop31_check ?encoding mln queries =
  List.iter
    (fun q ->
      let direct = Mln.probability ~domain:domain2 mln q in
      let via_tid = Mln.probability_via_tid ?encoding ~domain:domain2 mln q in
      Test_util.check_float
        (Printf.sprintf "Prop 3.1 for %s" (L.Fo.to_string q))
        direct via_tid)
    queries

let manager_queries =
  [
    parse_s "HighlyCompensated(p1)";
    parse_s "exists m e. Manager(m,e)";
    parse_s "forall m. HighlyCompensated(m)";
    parse_s "exists m. Manager(m,m) && !HighlyCompensated(m)";
  ]

let test_prop31_iff () = prop31_check ~encoding:Mln.Iff_encoding Mln.manager_example manager_queries
let test_prop31_or () = prop31_check ~encoding:Mln.Or_encoding Mln.manager_example manager_queries

let test_prop31_small_weight () =
  (* weight < 1: the Or encoding uses a non-standard probability (> 1), yet
     all conditional probabilities remain standard (Appendix) *)
  let mln = [ Mln.soft 0.4 (parse ~free:[ "m"; "e" ] "Manager(m,e) => HighlyCompensated(m)") ] in
  let translation = Mln.translate ~encoding:Mln.Or_encoding ~domain:domain2 mln in
  Alcotest.(check bool) "non-standard TID" false (Core.Tid.is_standard translation.Mln.db);
  prop31_check ~encoding:Mln.Or_encoding mln [ parse_s "HighlyCompensated(p1)" ];
  prop31_check ~encoding:Mln.Iff_encoding mln [ parse_s "HighlyCompensated(p1)" ]

let test_prop31_two_constraints () =
  let mln =
    [
      Mln.soft 2.5 (parse ~free:[ "x"; "y" ] "Friend(x,y) => Friend(y,x)");
      Mln.soft 0.7 (parse ~free:[ "x" ] "Friend(x,x)");
    ]
  in
  List.iter
    (fun enc ->
      List.iter
        (fun q ->
          let direct = Mln.probability ~domain:domain2 mln q in
          let via = Mln.probability_via_tid ~encoding:enc ~domain:domain2 mln q in
          Test_util.check_float (Printf.sprintf "two constraints %s" (L.Fo.to_string q))
            direct via)
        [ parse_s "exists x y. Friend(x,y)"; parse_s "Friend(p1,p2)" ])
    [ Mln.Iff_encoding; Mln.Or_encoding ]

let test_translation_shape () =
  let tr = Mln.translate ~domain:domain2 Mln.manager_example in
  Alcotest.(check int) "one aux relation" 1 (List.length tr.Mln.aux);
  let aux = List.hd tr.Mln.aux in
  let rel = Core.Tid.relation tr.Mln.db aux in
  Alcotest.(check int) "aux is complete" 4 (Core.Relation.cardinal rel);
  (* original relations complete at 1/2 *)
  let m = Core.Tid.relation tr.Mln.db "Manager" in
  Alcotest.(check int) "manager complete" 4 (Core.Relation.cardinal m);
  List.iter (fun (_, p) -> Test_util.check_float "half" 0.5 p) (Core.Relation.rows m);
  (* the translated db of the Sec. 3 example is symmetric (Sec. 8) *)
  List.iter
    (fun r ->
      match List.sort_uniq compare (List.map snd (Core.Relation.rows r)) with
      | [ _ ] -> ()
      | _ -> Alcotest.failf "%s not symmetric" (Core.Relation.name r))
    (Core.Tid.relations tr.Mln.db)

(* ---------- propositional factors (Appendix / Fig. 3) ---------- *)

let x1 = F.var 1
let x2 = F.var 2
let x3 = F.var 3

let eq14 = F.conj [ F.disj2 x1 x2; F.disj2 x1 x3; F.disj2 x2 x3 ]

let test_fig3_factor_table () =
  (* Fig. 3, last column: adding the factor (w4, X1 => X2) *)
  let w1, w2, w3, w4 = (0.6, 1.7, 2.2, 3.1) in
  let mn =
    Factors.make
      ~var_weights:[ (1, w1); (2, w2); (3, w3) ]
      [ { Factors.weight = w4; formula = F.implies x1 x2 } ]
  in
  (* weight'(F) = w2 w3 w4 + w1 w3 + w2 w3 w4 ... per the Appendix:
     models 011, 101, 110, 111 with the factor applying to 011, 110, 111 *)
  let expected =
    (w2 *. w3 *. w4) +. (w1 *. w3) +. (w1 *. w2 *. w4) +. (w1 *. w2 *. w3 *. w4)
  in
  let z = Factors.partition_function mn in
  Test_util.check_float "weight'(F)" expected (Factors.probability mn eq14 *. z)

let test_factor_translation_both_encodings () =
  let mn =
    Factors.make
      ~var_weights:[ (1, 0.6); (2, 1.7); (3, 2.2) ]
      [ { Factors.weight = 3.1; formula = F.implies x1 x2 } ]
  in
  let direct = Factors.probability mn eq14 in
  Test_util.check_float "iff encoding" direct
    (Factors.probability_via_translation ~encoding:Factors.Iff_encoding mn eq14);
  Test_util.check_float "or encoding" direct
    (Factors.probability_via_translation ~encoding:Factors.Or_encoding mn eq14)

let test_factor_translation_small_weight () =
  (* w4 < 1 -> negative weight for the fresh variable in the Or encoding *)
  let mn = Factors.make [ { Factors.weight = 0.3; formula = F.conj2 x1 x2 } ] in
  let tr = Factors.translate ~encoding:Factors.Or_encoding mn in
  let fresh_p = List.assoc (snd (List.hd tr.Factors.fresh)) tr.Factors.probs in
  Alcotest.(check bool) "non-standard probability" true (fresh_p < 0.0 || fresh_p > 1.0);
  List.iter
    (fun q ->
      let direct = Factors.probability mn q in
      Test_util.check_float "small weight or-encoding" direct
        (Factors.probability_via_translation ~encoding:Factors.Or_encoding mn q))
    [ x1; F.conj2 x1 x2; F.disj2 x1 (F.neg x2) ]

let test_multi_factor () =
  let mn =
    Factors.make
      [
        { Factors.weight = 2.0; formula = F.implies x1 x2 };
        { Factors.weight = 0.5; formula = F.disj2 x2 x3 };
      ]
  in
  List.iter
    (fun q ->
      let direct = Factors.probability mn q in
      Test_util.check_float "multi-factor iff" direct
        (Factors.probability_via_translation ~encoding:Factors.Iff_encoding mn q);
      Test_util.check_float "multi-factor or" direct
        (Factors.probability_via_translation ~encoding:Factors.Or_encoding mn q))
    [ x1; x3; F.conj2 x2 x3 ]

(* Property: Prop 3.1 holds for random single-constraint propositional MNs. *)
let gen_small_formula =
  QCheck2.Gen.(
    sized_size (int_range 0 4) @@ fix (fun self n ->
        if n = 0 then map F.var (int_range 0 3)
        else
          oneof
            [
              map F.var (int_range 0 3);
              map F.neg (self (n - 1));
              map2 F.conj2 (self (n / 2)) (self (n / 2));
              map2 F.disj2 (self (n / 2)) (self (n / 2));
            ]))

let prop_factor_translation =
  Test_util.qcheck ~count:150 "random factor: both encodings match"
    QCheck2.Gen.(triple gen_small_formula gen_small_formula (float_range 0.2 5.0))
    (fun (g, q, w) ->
      QCheck2.assume (Float.abs (w -. 1.0) > 1e-3);
      let mn = Factors.make [ { Factors.weight = w; formula = g } ] in
      let direct = Factors.probability mn q in
      let ok enc =
        Float.abs (Factors.probability_via_translation ~encoding:enc mn q -. direct)
        < 1e-9
      in
      ok Factors.Iff_encoding && ok Factors.Or_encoding)

let suites =
  [
    ( "mln",
      [
        Alcotest.test_case "groundings" `Quick test_groundings;
        Alcotest.test_case "world weight" `Quick test_world_weight;
        Alcotest.test_case "partition function (tautology)" `Quick test_partition_function_no_factor;
        Alcotest.test_case "MLN semantics: evidence raises belief" `Quick test_mln_monotonicity;
        Alcotest.test_case "Prop 3.1 (iff encoding)" `Quick test_prop31_iff;
        Alcotest.test_case "Prop 3.1 (or encoding, the paper's)" `Quick test_prop31_or;
        Alcotest.test_case "Prop 3.1 with weight < 1" `Quick test_prop31_small_weight;
        Alcotest.test_case "Prop 3.1 with two constraints" `Quick test_prop31_two_constraints;
        Alcotest.test_case "translation shape & symmetry" `Quick test_translation_shape;
        Alcotest.test_case "Fig. 3 factor table" `Quick test_fig3_factor_table;
        Alcotest.test_case "factor translation (both encodings)" `Quick test_factor_translation_both_encodings;
        Alcotest.test_case "factor translation, weight < 1" `Quick test_factor_translation_small_weight;
        Alcotest.test_case "multiple factors" `Quick test_multi_factor;
        prop_factor_translation;
      ] );
  ]
