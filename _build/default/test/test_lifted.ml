module Core = Probdb_core
module L = Probdb_logic
module Lift = Probdb_lifted.Lift
module Q = Probdb_workload.Queries
module Gen = Probdb_workload.Gen

let parse_s = L.Parser.parse_sentence

let is_safe v = match v with Lift.Safe -> true | _ -> false

let test_classifier_on_zoo () =
  List.iter
    (fun (e : Q.entry) ->
      let v = Lift.classify e.Q.query in
      let expected_safe = e.Q.expected = Q.Ptime in
      if is_safe v <> expected_safe then
        Alcotest.failf "%s: expected %s, classifier said %s" e.Q.name
          (if expected_safe then "safe" else "unsafe/beyond-rules")
          (Format.asprintf "%a" Lift.pp_verdict v))
    Q.all

let test_classifier_unsupported () =
  match Lift.classify (parse_s "forall x. exists y. S(x,y)") with
  | Lift.Unsupported _ -> ()
  | v -> Alcotest.failf "expected Unsupported, got %a" Lift.pp_verdict v

(* For each safe zoo query, lifted inference must equal brute force on
   several random databases. *)
let db_for_query ?(domain_size = 2) ~seed q =
  let specs =
    List.map (fun (name, arity) -> Gen.spec ~density:0.7 name arity) (L.Fo.relations q)
  in
  Gen.random_tid ~seed ~domain_size specs

let check_query_numerically ?domain_size (e : Q.entry) =
  for seed = 1 to 10 do
    let db = db_for_query ?domain_size ~seed e.Q.query in
    let expected = L.Brute_force.probability db e.Q.query in
    let got = Lift.probability db e.Q.query in
    Test_util.check_float
      (Printf.sprintf "%s (seed %d)" e.Q.name seed)
      expected got
  done

let test_lifted_matches_brute_force () =
  List.iter
    (fun (e : Q.entry) -> if e.Q.expected = Q.Ptime then check_query_numerically e)
    Q.all

let test_lifted_larger_domain () =
  (* same on a 3-element domain for the cheap queries *)
  List.iter
    (fun name -> check_query_numerically ~domain_size:3 (Q.find name))
    [ "q_hier"; "example_2_1"; "q_j" ]

let test_example_2_1_closed_form () =
  let db = Test_util.fig1_tid () in
  Test_util.check_float "Example 2.1 via lifted inference"
    (Test_util.example_2_1_expected ())
    (Lift.probability db Q.example_2_1.Q.query)

let test_qj_needs_inclusion_exclusion () =
  (* Sec. 5: basic rules fail on Q_J, the full rule set succeeds. *)
  (match Lift.classify ~config:Lift.basic_rules_only Q.q_j.Q.query with
  | Lift.Unsafe_by_rules _ -> ()
  | v -> Alcotest.failf "basic rules should fail on Q_J, got %a" Lift.pp_verdict v);
  Alcotest.(check bool) "full rules succeed" true (is_safe (Lift.classify Q.q_j.Q.query));
  let stats = Lift.fresh_stats () in
  let db = db_for_query ~seed:7 Q.q_j.Q.query in
  let _p = Lift.probability ~stats db Q.q_j.Q.query in
  Alcotest.(check bool) "I/E fired" true (stats.Lift.ie_expansions > 0)

let test_qw_needs_cancellation () =
  (* Sec. 5's cancellation discussion: without cancelling equivalent I/E
     terms the expansion hits the #P-hard h3-shaped subquery. *)
  (match Lift.classify ~config:Lift.no_cancellation Q.q_w.Q.query with
  | Lift.Unsafe_by_rules _ -> ()
  | v -> Alcotest.failf "no-cancellation should fail on Q_W, got %a" Lift.pp_verdict v);
  Alcotest.(check bool) "with cancellation: safe" true (is_safe (Lift.classify Q.q_w.Q.query));
  let stats = Lift.fresh_stats () in
  let db = db_for_query ~seed:3 Q.q_w.Q.query in
  let p = Lift.probability ~stats db Q.q_w.Q.query in
  Test_util.check_float "Q_W matches brute force"
    (L.Brute_force.probability db Q.q_w.Q.query) p;
  Alcotest.(check bool) "terms were cancelled" true (stats.Lift.cancelled_terms > 0)

let test_separator_positions () =
  (* the separator may sit at different positions of different relations *)
  let q = parse_s "exists x y. S(y,x) && R(x)" in
  Alcotest.(check bool) "cross-position separator" true (is_safe (Lift.classify q));
  check_query_numerically
    { Q.name = "cross_pos"; text = ""; query = q; expected = Q.Ptime; about = "" };
  (* but inconsistent positions within one relation are rejected *)
  let bad = parse_s "exists x y. S(x,y) && S(y,x)" in
  match Lift.classify bad with
  | Lift.Unsafe_by_rules _ -> ()
  | v -> Alcotest.failf "expected unsafe (needs ranking), got %a" Lift.pp_verdict v

let test_stats_counters () =
  let stats = Lift.fresh_stats () in
  let db = db_for_query ~seed:5 Q.q_hier.Q.query in
  let _ = Lift.probability ~stats db Q.q_hier.Q.query in
  Alcotest.(check bool) "separator used" true (stats.Lift.separator_steps > 0);
  Alcotest.(check bool) "base lookups" true (stats.Lift.base_lookups > 0);
  let stats2 = Lift.fresh_stats () in
  let q = parse_s "(exists x. R(x)) && (exists y. T(y))" in
  let db2 = db_for_query ~seed:5 q in
  let _ = Lift.probability ~stats:stats2 db2 q in
  Alcotest.(check bool) "independent join used" true (stats2.Lift.independent_joins > 0)

let test_forall_mode () =
  (* ∀-sentences go through the complemented dual *)
  let q = parse_s "forall x y. R(x) || S(x,y)" in
  for seed = 1 to 10 do
    let db = db_for_query ~seed q in
    Test_util.check_float
      (Printf.sprintf "forall dual (seed %d)" seed)
      (L.Brute_force.probability db q)
      (Lift.probability db q)
  done

let test_constants_in_query () =
  (* ground atoms and mixed constants work through the base case *)
  let q = parse_s "exists y. S(0,y) && R(0)" in
  for seed = 1 to 5 do
    let db = db_for_query ~seed q in
    Test_util.check_float
      (Printf.sprintf "constants (seed %d)" seed)
      (L.Brute_force.probability db q)
      (Lift.probability db q)
  done

let test_hierarchical_chain_family () =
  List.iter
    (fun k ->
      let q = Q.hierarchical_chain k in
      Alcotest.(check bool)
        (Printf.sprintf "chain %d safe" k)
        true
        (is_safe (Lift.classify q)))
    [ 1; 2; 3; 4 ];
  let q = Q.hierarchical_chain 2 in
  for seed = 1 to 5 do
    let db = db_for_query ~seed q in
    Test_util.check_float
      (Printf.sprintf "chain2 (seed %d)" seed)
      (L.Brute_force.probability db q)
      (Lift.probability db q)
  done

(* ---------- properties ---------- *)

(* Random self-join-free CQs over a fixed vocabulary: safety by the lifted
   rules must coincide with the hierarchy test (Thm. 4.3 vs Thm. 5.1). *)
let gen_sjf_cq =
  QCheck2.Gen.(
    let var = map (fun i -> Printf.sprintf "v%d" i) (int_range 0 2) in
    let pick name arity =
      let+ args = flatten_l (List.init arity (fun _ -> var)) in
      L.Cq.of_vars name args
    in
    let* use_r = bool and* use_s = bool and* use_t = bool and* use_u = bool in
    let atoms =
      List.filter_map Fun.id
        [
          (if use_r then Some (pick "R" 1) else None);
          (if use_s then Some (pick "S" 2) else None);
          (if use_t then Some (pick "T" 1) else None);
          (if use_u then Some (pick "U" 2) else None);
        ]
    in
    match atoms with
    | [] -> map (fun a -> L.Cq.make [ a ]) (pick "R" 1)
    | _ -> map L.Cq.make (flatten_l atoms))

let prop_dichotomy_agreement =
  Test_util.qcheck ~count:400 "lifted rules = hierarchy test on sjf CQs" gen_sjf_cq
    (fun cq ->
      let hier = L.Dichotomy.classify_sjf_cq cq = L.Dichotomy.Safe in
      let lifted = is_safe (Lift.classify_ucq [ cq ]) in
      hier = lifted)

let prop_lifted_correct_on_safe_cqs =
  Test_util.qcheck ~count:150 "lifted = brute force on safe sjf CQs"
    QCheck2.Gen.(pair gen_sjf_cq (int_range 1 1000))
    (fun (cq, seed) ->
      if L.Dichotomy.classify_sjf_cq cq <> L.Dichotomy.Safe then true
      else begin
        let q = L.Cq.to_fo cq in
        let db = db_for_query ~seed q in
        let expected = L.Brute_force.probability db q in
        let got = Lift.probability_ucq db [ cq ] in
        Float.abs (expected -. got) < 1e-9
      end)

let suites =
  [
    ( "lifted",
      [
        Alcotest.test_case "classifier on the query zoo" `Quick test_classifier_on_zoo;
        Alcotest.test_case "unsupported fragment" `Quick test_classifier_unsupported;
        Alcotest.test_case "lifted = brute force (safe zoo)" `Quick test_lifted_matches_brute_force;
        Alcotest.test_case "larger domain" `Quick test_lifted_larger_domain;
        Alcotest.test_case "Example 2.1 closed form" `Quick test_example_2_1_closed_form;
        Alcotest.test_case "Q_J needs inclusion-exclusion" `Quick test_qj_needs_inclusion_exclusion;
        Alcotest.test_case "Q_W needs cancellation" `Quick test_qw_needs_cancellation;
        Alcotest.test_case "separator positions" `Quick test_separator_positions;
        Alcotest.test_case "stats counters" `Quick test_stats_counters;
        Alcotest.test_case "forall sentences via dual" `Quick test_forall_mode;
        Alcotest.test_case "constants in query" `Quick test_constants_in_query;
        Alcotest.test_case "hierarchical chain family" `Quick test_hierarchical_chain_family;
        prop_dichotomy_agreement;
        prop_lifted_correct_on_safe_cqs;
      ] );
  ]
